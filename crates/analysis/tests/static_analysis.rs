//! Integration tests for the static-analysis passes, over real firmware
//! built by `embsan-guestos`.

use embsan_analysis::audit::{audit, audit_with};
use embsan_analysis::cfg::{Cfg, VIRTUAL_ROOT};
use embsan_analysis::races::{race_candidates, watchpoint_priorities};
use embsan_analysis::static_priors;
use embsan_asm::image::FirmwareImage;
use embsan_core::probe::{probe, ProbeMode};
use embsan_emu::hook::HookConfig;
use embsan_emu::isa::Insn;
use embsan_emu::profile::Arch;
use embsan_emu::translate::translate_block_at;
use embsan_guestos::bugs::{BugKind, BugSpec, LATENT_BUGS};
use embsan_guestos::{os, BuildOptions, SanMode};

fn all_images() -> Vec<(String, FirmwareImage)> {
    let mut images = Vec::new();
    for arch in Arch::ALL {
        let opts = BuildOptions::new(arch);
        images.push((format!("emblinux/{arch:?}"), os::emblinux::build(&opts, &[]).unwrap()));
        images.push((format!("freertos/{arch:?}"), os::freertos::build(&opts, &[]).unwrap()));
        images.push((format!("liteos/{arch:?}"), os::liteos::build(&opts, &[]).unwrap()));
        // The VxWorks flavour ships stripped; audit the closed-source form.
        images.push((format!("vxworks/{arch:?}"), os::vxworks::build(&opts, &[]).unwrap()));
    }
    images
}

/// Tentpole acceptance: the real translator splices a probe on every
/// reachable memory op, for all 4 OS flavours × all 3 arch profiles.
#[test]
fn probe_audit_is_clean_on_all_images() {
    for (name, image) in all_images() {
        let report = audit(&image, HookConfig::all()).unwrap();
        assert!(report.checked_sites > 100, "{name}: implausibly few sites");
        assert!(
            report.is_clean(),
            "{name}: missing={:x?} spurious={:x?} uncovered={:x?}",
            report.missing,
            report.spurious,
            report.uncovered,
        );
        // With probes disarmed nothing may carry a probe marker.
        let disarmed = audit(&image, HookConfig::none()).unwrap();
        assert_eq!(disarmed.probed_sites, 0, "{name}: probes spliced while disarmed");
        assert!(disarmed.is_clean(), "{name}: disarmed audit not clean");
    }
}

/// Deliberately stripping probe splicing from one memory-op kind (stores)
/// must make the audit fail — the negative control for the auditor itself.
#[test]
fn audit_catches_stripped_store_probes() {
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::emblinux::build(&opts, &[]).unwrap();
    let broken = |bus: &_, pc, config| {
        let mut block = translate_block_at(bus, pc, config)?;
        for op in &mut block.ops {
            if matches!(op.insn, Insn::Sb { .. } | Insn::Sh { .. } | Insn::Sw { .. }) {
                op.probe_mem = false;
            }
        }
        Ok(block)
    };
    let report = audit_with(&image, HookConfig::all(), broken).unwrap();
    assert!(!report.is_clean());
    assert!(!report.missing.is_empty());
    assert!(report
        .missing
        .iter()
        .all(|(_, insn)| matches!(insn, Insn::Sb { .. } | Insn::Sh { .. } | Insn::Sw { .. })));
}

/// CFG recovery finds the kernel's functions, reaches the indirect-dispatch
/// syscall handlers via address-taken constants, and roots its dominator
/// tree correctly.
#[test]
fn cfg_recovers_functions_dispatch_targets_and_dominators() {
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::emblinux::build(&opts, &[]).unwrap();
    let cfg = Cfg::build(&image);

    for name in ["boot", "kernel_ready", "uart_puts", "executor_loop", "syscalls_init"] {
        let addr = image.symbol(name).unwrap();
        assert!(cfg.functions.contains_key(&addr), "function {name} not recovered");
    }
    // sys_stat is only reachable through the sys_table function-pointer
    // dispatch; address-taken recovery must still reach it.
    let stat = image.symbol("sys_stat").unwrap();
    assert!(cfg.address_taken.contains(&stat), "sys_stat not address-taken");
    assert!(cfg.blocks.contains_key(&stat), "sys_stat unreachable");

    // Every recovered block has a dominator chain ending at the virtual root.
    for &start in cfg.blocks.keys() {
        assert!(cfg.idom.contains_key(&start), "block {start:#x} lacks an idom");
        assert!(cfg.dominates(VIRTUAL_ROOT, start));
    }
    // A function entry dominates the blocks of its own straight-line body.
    let puts = image.symbol("uart_puts").unwrap();
    for &b in &cfg.functions[&puts].blocks {
        assert!(cfg.dominates(puts, b));
    }
    assert!(cfg.reachable_fraction() > 0.5, "most of the text should be reachable");
}

/// The allocator-signature pass must rank the true allocator pair of the
/// *stripped* VxWorks image, and feeding it to the D-binary prober must cut
/// the dry-run passes strictly below the unassisted baseline.
#[test]
fn static_priors_cut_dynamic_binary_probe_passes() {
    let opts = BuildOptions::new(Arch::Armv);
    let stripped = os::vxworks::build(&opts, &[]).unwrap();
    let truth = os::vxworks::build_unstripped(&opts, &[]).unwrap();
    let alloc_addr = truth.symbol("memPartAlloc").unwrap();
    let free_addr = truth.symbol("memPartFree").unwrap();

    let prior = static_priors(&stripped);
    assert!(
        prior.alloc_candidates.contains(&alloc_addr),
        "memPartAlloc {alloc_addr:#x} missing from candidates {:#x?}",
        prior.alloc_candidates
    );
    assert!(
        prior.free_candidates.contains(&free_addr),
        "memPartFree {free_addr:#x} missing from candidates {:#x?}",
        prior.free_candidates
    );

    let baseline = probe(&stripped, ProbeMode::DynamicBinary, None).unwrap();
    let assisted = probe(&stripped, ProbeMode::DynamicBinary, Some(&prior)).unwrap();
    assert!(
        assisted.stats.dry_run_passes < baseline.stats.dry_run_passes,
        "static priors did not cut passes: {} vs {}",
        assisted.stats.dry_run_passes,
        baseline.stats.dry_run_passes
    );
    assert_eq!(assisted.stats.dry_run_passes, 1);
    assert_eq!(baseline.stats.dry_run_passes, 2);
    // Both paths must converge on the same platform description.
    assert_eq!(assisted.to_dsl(), baseline.to_dsl());
}

/// The lockset pass flags the deliberately unsynchronized counter and does
/// not flag the spinlock-protected statistics word.
#[test]
fn lockset_flags_racy_counter_but_not_locked_stats() {
    let race_bug = LATENT_BUGS
        .iter()
        .find(|b| b.kind == BugKind::Race)
        .map(|b| BugSpec::new(b.location, b.kind))
        .expect("corpus has a race bug");
    let mut opts = BuildOptions::new(Arch::Armv);
    opts.cpus = 2;
    let image = os::emblinux::build(&opts, &[race_bug]).unwrap();
    let cfg = Cfg::build(&image);
    let candidates = race_candidates(&cfg, &image);

    let racy = image.symbol("racy_counter").unwrap();
    let shared = image.symbol("shared_stats").unwrap();
    assert!(
        candidates.iter().any(|c| c.addr == racy),
        "racy_counter {racy:#x} not flagged: {candidates:#x?}"
    );
    assert!(
        !candidates.iter().any(|c| c.addr == shared),
        "lock-protected shared_stats {shared:#x} wrongly flagged"
    );
    let candidate = candidates.iter().find(|c| c.addr == racy).unwrap();
    assert!(candidate.unlocked_writes >= 1);
    assert_eq!(candidate.symbol.as_deref(), Some("racy_counter"));
}

/// The ranked race candidates plumb through to the KCSAN engine's
/// watchpoint prioritization on a live session.
#[test]
fn race_priorities_flow_into_kcsan_session() {
    let race_bug = LATENT_BUGS
        .iter()
        .find(|b| b.kind == BugKind::Race)
        .map(|b| BugSpec::new(b.location, b.kind))
        .unwrap();
    let mut opts = BuildOptions::new(Arch::Armv);
    opts.cpus = 2;
    opts.san = SanMode::SanCall;
    let image = os::emblinux::build(&opts, &[race_bug]).unwrap();
    let cfg = Cfg::build(&image);
    let priorities = watchpoint_priorities(&cfg, &image);
    let racy = image.symbol("racy_counter").unwrap();
    assert!(priorities.contains(&racy), "racy_counter missing from priorities");

    let specs = embsan_core::reference_specs().unwrap();
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let mut session = embsan_core::session::Session::new(&image, &specs, &artifacts).unwrap();
    assert_eq!(session.runtime().race_priority_count(), 0);
    session.set_race_priorities(&priorities);
    assert_eq!(session.runtime().race_priority_count(), priorities.len());
}
