//! Integration tests for the static-analysis passes, over real firmware
//! built by `embsan-guestos`.

use embsan_analysis::audit::{audit, audit_with};
use embsan_analysis::cfg::{Cfg, VIRTUAL_ROOT};
use embsan_analysis::distance::{block_distances, FlowGraph, MILLI};
use embsan_analysis::races::{race_candidates, watchpoint_priorities};
use embsan_analysis::{harvest, static_priors, AnalysisArtifact};
use embsan_asm::image::FirmwareImage;
use embsan_core::probe::{probe, ProbeMode};
use embsan_emu::hook::HookConfig;
use embsan_emu::isa::Insn;
use embsan_emu::profile::Arch;
use embsan_emu::translate::translate_block_at;
use embsan_guestos::bugs::{BugKind, BugSpec, LATENT_BUGS};
use embsan_guestos::{os, BuildOptions, SanMode};

fn all_images() -> Vec<(String, FirmwareImage)> {
    let mut images = Vec::new();
    for arch in Arch::ALL {
        let opts = BuildOptions::new(arch);
        images.push((format!("emblinux/{arch:?}"), os::emblinux::build(&opts, &[]).unwrap()));
        images.push((format!("freertos/{arch:?}"), os::freertos::build(&opts, &[]).unwrap()));
        images.push((format!("liteos/{arch:?}"), os::liteos::build(&opts, &[]).unwrap()));
        // The VxWorks flavour ships stripped; audit the closed-source form.
        images.push((format!("vxworks/{arch:?}"), os::vxworks::build(&opts, &[]).unwrap()));
    }
    images
}

/// Tentpole acceptance: the real translator splices a probe on every
/// reachable memory op, for all 4 OS flavours × all 3 arch profiles.
#[test]
fn probe_audit_is_clean_on_all_images() {
    for (name, image) in all_images() {
        let report = audit(&image, HookConfig::all()).unwrap();
        assert!(report.checked_sites > 100, "{name}: implausibly few sites");
        assert!(
            report.is_clean(),
            "{name}: missing={:x?} spurious={:x?} uncovered={:x?}",
            report.missing,
            report.spurious,
            report.uncovered,
        );
        // With probes disarmed nothing may carry a probe marker.
        let disarmed = audit(&image, HookConfig::none()).unwrap();
        assert_eq!(disarmed.probed_sites, 0, "{name}: probes spliced while disarmed");
        assert!(disarmed.is_clean(), "{name}: disarmed audit not clean");
    }
}

/// Deliberately stripping probe splicing from one memory-op kind (stores)
/// must make the audit fail — the negative control for the auditor itself.
#[test]
fn audit_catches_stripped_store_probes() {
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::emblinux::build(&opts, &[]).unwrap();
    let broken = |bus: &_, pc, config| {
        let mut block = translate_block_at(bus, pc, config)?;
        for op in &mut block.ops {
            if matches!(op.insn, Insn::Sb { .. } | Insn::Sh { .. } | Insn::Sw { .. }) {
                op.probe_mem = false;
            }
        }
        Ok(block)
    };
    let report = audit_with(&image, HookConfig::all(), broken).unwrap();
    assert!(!report.is_clean());
    assert!(!report.missing.is_empty());
    assert!(report
        .missing
        .iter()
        .all(|(_, insn)| matches!(insn, Insn::Sb { .. } | Insn::Sh { .. } | Insn::Sw { .. })));
}

/// CFG recovery finds the kernel's functions, reaches the indirect-dispatch
/// syscall handlers via address-taken constants, and roots its dominator
/// tree correctly.
#[test]
fn cfg_recovers_functions_dispatch_targets_and_dominators() {
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::emblinux::build(&opts, &[]).unwrap();
    let cfg = Cfg::build(&image);

    for name in ["boot", "kernel_ready", "uart_puts", "executor_loop", "syscalls_init"] {
        let addr = image.symbol(name).unwrap();
        assert!(cfg.functions.contains_key(&addr), "function {name} not recovered");
    }
    // sys_stat is only reachable through the sys_table function-pointer
    // dispatch; address-taken recovery must still reach it.
    let stat = image.symbol("sys_stat").unwrap();
    assert!(cfg.address_taken.contains(&stat), "sys_stat not address-taken");
    assert!(cfg.blocks.contains_key(&stat), "sys_stat unreachable");

    // Every recovered block has a dominator chain ending at the virtual root.
    for &start in cfg.blocks.keys() {
        assert!(cfg.idom.contains_key(&start), "block {start:#x} lacks an idom");
        assert!(cfg.dominates(VIRTUAL_ROOT, start));
    }
    // A function entry dominates the blocks of its own straight-line body.
    let puts = image.symbol("uart_puts").unwrap();
    for &b in &cfg.functions[&puts].blocks {
        assert!(cfg.dominates(puts, b));
    }
    assert!(cfg.reachable_fraction() > 0.5, "most of the text should be reachable");
}

/// The allocator-signature pass must rank the true allocator pair of the
/// *stripped* VxWorks image, and feeding it to the D-binary prober must cut
/// the dry-run passes strictly below the unassisted baseline.
#[test]
fn static_priors_cut_dynamic_binary_probe_passes() {
    let opts = BuildOptions::new(Arch::Armv);
    let stripped = os::vxworks::build(&opts, &[]).unwrap();
    let truth = os::vxworks::build_unstripped(&opts, &[]).unwrap();
    let alloc_addr = truth.symbol("memPartAlloc").unwrap();
    let free_addr = truth.symbol("memPartFree").unwrap();

    let prior = static_priors(&stripped);
    assert!(
        prior.alloc_candidates.contains(&alloc_addr),
        "memPartAlloc {alloc_addr:#x} missing from candidates {:#x?}",
        prior.alloc_candidates
    );
    assert!(
        prior.free_candidates.contains(&free_addr),
        "memPartFree {free_addr:#x} missing from candidates {:#x?}",
        prior.free_candidates
    );

    let baseline = probe(&stripped, ProbeMode::DynamicBinary, None).unwrap();
    let assisted = probe(&stripped, ProbeMode::DynamicBinary, Some(&prior)).unwrap();
    assert!(
        assisted.stats.dry_run_passes < baseline.stats.dry_run_passes,
        "static priors did not cut passes: {} vs {}",
        assisted.stats.dry_run_passes,
        baseline.stats.dry_run_passes
    );
    assert_eq!(assisted.stats.dry_run_passes, 1);
    assert_eq!(baseline.stats.dry_run_passes, 2);
    // Both paths must converge on the same platform description.
    assert_eq!(assisted.to_dsl(), baseline.to_dsl());
}

/// The lockset pass flags the deliberately unsynchronized counter and does
/// not flag the spinlock-protected statistics word.
#[test]
fn lockset_flags_racy_counter_but_not_locked_stats() {
    let race_bug = LATENT_BUGS
        .iter()
        .find(|b| b.kind == BugKind::Race)
        .map(|b| BugSpec::new(b.location, b.kind))
        .expect("corpus has a race bug");
    let mut opts = BuildOptions::new(Arch::Armv);
    opts.cpus = 2;
    let image = os::emblinux::build(&opts, &[race_bug]).unwrap();
    let cfg = Cfg::build(&image);
    let candidates = race_candidates(&cfg, &image);

    let racy = image.symbol("racy_counter").unwrap();
    let shared = image.symbol("shared_stats").unwrap();
    assert!(
        candidates.iter().any(|c| c.addr == racy),
        "racy_counter {racy:#x} not flagged: {candidates:#x?}"
    );
    assert!(
        !candidates.iter().any(|c| c.addr == shared),
        "lock-protected shared_stats {shared:#x} wrongly flagged"
    );
    let candidate = candidates.iter().find(|c| c.addr == racy).unwrap();
    assert!(candidate.unlocked_writes >= 1);
    assert_eq!(candidate.symbol.as_deref(), Some("racy_counter"));
}

/// The ranked race candidates plumb through to the KCSAN engine's
/// watchpoint prioritization on a live session.
#[test]
fn race_priorities_flow_into_kcsan_session() {
    let race_bug = LATENT_BUGS
        .iter()
        .find(|b| b.kind == BugKind::Race)
        .map(|b| BugSpec::new(b.location, b.kind))
        .unwrap();
    let mut opts = BuildOptions::new(Arch::Armv);
    opts.cpus = 2;
    opts.san = SanMode::SanCall;
    let image = os::emblinux::build(&opts, &[race_bug]).unwrap();
    let cfg = Cfg::build(&image);
    let priorities = watchpoint_priorities(&cfg, &image);
    let racy = image.symbol("racy_counter").unwrap();
    assert!(priorities.contains(&racy), "racy_counter missing from priorities");

    let specs = embsan_core::reference_specs().unwrap();
    let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
    let mut session = embsan_core::session::Session::new(&image, &specs, &artifacts).unwrap();
    assert_eq!(session.runtime().race_priority_count(), 0);
    session.set_race_priorities(&priorities);
    assert_eq!(session.runtime().race_priority_count(), priorities.len());
}

/// The comparison harvester reassembles a wide-gate trigger key that the
/// immediate scan can only ever see as two disjoint halves.
#[test]
fn harvester_reassembles_wide_gate_keys() {
    let spec = BugSpec::new("fuzz/wide", BugKind::OobWrite);
    let opts = BuildOptions::new(Arch::Armv).wide_gates(true);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&spec)).unwrap();
    let cfg = Cfg::build(&image);
    let key = embsan_guestos::bugs::wide_trigger_key("fuzz/wide");
    let operands = harvest(&cfg);
    let hit = operands.iter().find(|op| op.value == key).unwrap_or_else(|| {
        panic!("wide key {key:#x} not harvested from {} operands", operands.len())
    });
    // The guarding block lives inside the bug handler.
    let handler = image.symbol("sys_bug_0").unwrap();
    assert_eq!(cfg.owner_of(hit.block), handler, "guard block outside sys_bug_0");
    // The staged-gate build of the same firmware never compares the wide
    // key (its constants are the two gate bytes).
    let staged = os::emblinux::build(&BuildOptions::new(Arch::Armv), &[spec]).unwrap();
    let staged_ops = harvest(&Cfg::build(&staged));
    assert!(staged_ops.iter().all(|op| op.value != key));
}

/// Static distances on real firmware: blocks inside the bug handler sit at
/// the target, its callers strictly farther, in whole milli-edge units.
#[test]
fn distances_descend_toward_a_bug_handler() {
    let spec = BugSpec::new("fuzz/wide", BugKind::OobWrite);
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::emblinux::build(&opts, &[spec]).unwrap();
    let cfg = Cfg::build(&image);
    let graph = FlowGraph::from_cfg(&cfg);
    let handler = image.symbol("sys_bug_0").unwrap();
    let dist = block_distances(&graph, &[handler]);
    assert_eq!(dist.get(&handler), Some(&0));
    // The dispatcher reaches the handler; boot reaches the dispatcher.
    let dispatch = image.symbol("executor_loop").unwrap();
    let dispatch_entry = dist.get(&dispatch);
    assert!(dispatch_entry.is_some(), "executor_loop cannot reach the handler");
    assert!(*dispatch_entry.unwrap() > 0);
    // Every finite distance is a whole milli multiple of nothing smaller
    // than the quantum... i.e. nonzero distances are at least one call-
    // weighted step or an edge.
    for (&block, &d) in &dist {
        if d > 0 {
            assert!(d >= MILLI / 10, "block {block:#x} has degenerate distance {d}");
        }
    }
    // An address outside the text section resolves to no target.
    assert!(block_distances(&graph, &[0xFFFF_0000]).is_empty());
}

/// The artifact round-trips through JSON bit-exactly and validates its
/// image pairing.
#[test]
fn artifact_round_trips_on_real_firmware() {
    let race_bug = LATENT_BUGS
        .iter()
        .find(|b| b.kind == BugKind::Race)
        .map(|b| BugSpec::new(b.location, b.kind))
        .unwrap();
    let mut opts = BuildOptions::new(Arch::Armv);
    opts.cpus = 2;
    let image = os::emblinux::build(&opts, &[race_bug]).unwrap();
    let artifact = AnalysisArtifact::from_image(&image);
    assert!(!artifact.graph.nodes.is_empty());
    // The race candidate's unlocked access sites become default targets.
    assert!(!artifact.default_targets.is_empty(), "race bug should yield targets");
    let reparsed = AnalysisArtifact::parse(&artifact.to_json()).unwrap();
    assert_eq!(reparsed, artifact);
    assert!(artifact.matches_image(&image));
    // A different build is refused.
    let other = os::freertos::build(&BuildOptions::new(Arch::Armv), &[]).unwrap();
    assert!(!artifact.matches_image(&other));
}

/// `memory_sites_cached` memoizes: repeated calls return the same slice,
/// and the owned export matches it.
#[test]
fn memory_sites_are_memoized() {
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::emblinux::build(&opts, &[]).unwrap();
    let cfg = Cfg::build(&image);
    let first = cfg.memory_sites_cached();
    let second = cfg.memory_sites_cached();
    assert_eq!(first.as_ptr(), second.as_ptr(), "cache was recomputed");
    let owned = cfg.memory_sites();
    assert_eq!(owned.len(), first.len());
    assert!(owned.iter().zip(first).all(|(a, b)| a.pc == b.pc && a.addr == b.addr));
}
