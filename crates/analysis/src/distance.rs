//! Böhme-style static distance to a target set.
//!
//! Given a recovered flow graph and a set of target addresses (typically
//! race-candidate access sites from [`crate::races`], or user-supplied),
//! this pass assigns every basic block a *static distance*: a deterministic
//! integer estimate of how far the block is from reaching a target, in
//! milli-edges. The construction follows AFLGo:
//!
//! 1. **Function-level** distance is computed over the call graph: a
//!    function containing a target has distance 0; otherwise its distance is
//!    the harmonic mean of its shortest call-chain hop counts to every
//!    reachable target function. The harmonic mean rewards functions close
//!    to *any* target without letting one unreachable target poison the
//!    score.
//! 2. **Block-level** distance relaxes over intra-procedural edges: a
//!    target block has distance 0; a block whose call target can reach a
//!    target seeds at [`CALL_WEIGHT`] × the callee's function distance; and
//!    every other block is one edge ([`MILLI`]) farther than its closest
//!    successor.
//!
//! Determinism: harmonic means are computed in `f64` but quantized **once**
//! to integer milli-units per function; everything downstream (seeding,
//! relaxation, and the fuzzer's scheduler) is pure integer arithmetic over
//! `BTreeMap`s, so the result is a pure function of the graph and target
//! set. Blocks that cannot reach any target are absent from the result map
//! — callers observe `None`, never a sentinel.
//!
//! The pass runs on [`FlowGraph`], a minimal address-indexed projection of
//! [`Cfg`] that is also what the `embsan-analysis-v1` artifact serializes —
//! so a campaign can re-run the distance pass from an artifact without the
//! image (see [`crate::artifact`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::Cfg;

/// Milli-edge scale: one intra-procedural edge costs this much.
pub const MILLI: u32 = 1000;

/// Call-edge weight multiplier (AFLGo's constant 10): a block calling a
/// function at function-distance *d* seeds at `CALL_WEIGHT × d` milli.
pub const CALL_WEIGHT: u32 = 10;

/// A basic block in the minimal flow-graph projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowNode {
    /// Address of the first instruction.
    pub start: u32,
    /// One past the last instruction byte (exclusive end).
    pub end: u32,
    /// Intra-procedural successor block starts.
    pub succs: Vec<u32>,
    /// Direct call target (function entry), if the block ends in a call.
    pub call_target: Option<u32>,
    /// Whether the block ends in an indirect call — modeled as possibly
    /// calling any address-taken function (how the executor's `sys_table`
    /// dispatch stays connected in the call graph).
    pub indirect_call: bool,
}

/// The minimal flow graph the distance pass (and the analysis artifact)
/// operates on: blocks plus the function partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowGraph {
    /// Function entry addresses, ascending.
    pub fn_entries: Vec<u32>,
    /// Address-taken function entries: the possible targets of every
    /// indirect call, ascending.
    pub address_taken: Vec<u32>,
    /// Blocks keyed by start address.
    pub nodes: BTreeMap<u32, FlowNode>,
}

impl FlowGraph {
    /// Projects a recovered [`Cfg`] down to the flow graph.
    pub fn from_cfg(cfg: &Cfg) -> FlowGraph {
        let nodes = cfg
            .blocks
            .values()
            .map(|block| {
                let end = block.insns.last().map_or(block.start, |&(pc, _)| pc + 4);
                (
                    block.start,
                    FlowNode {
                        start: block.start,
                        end,
                        succs: block.succs.clone(),
                        call_target: block.call_target,
                        indirect_call: block.indirect_call,
                    },
                )
            })
            .collect();
        FlowGraph {
            fn_entries: cfg.functions.keys().copied().collect(),
            address_taken: cfg
                .address_taken
                .iter()
                .copied()
                .filter(|a| cfg.functions.contains_key(a))
                .collect(),
            nodes,
        }
    }

    /// Entry of the function owning `block_start` (same rule as
    /// [`Cfg::owner_of`]: the greatest entry not past the block).
    pub fn owner_of(&self, block_start: u32) -> u32 {
        match self.fn_entries.binary_search(&block_start) {
            Ok(i) => self.fn_entries[i],
            Err(0) => self.fn_entries.first().copied().unwrap_or(block_start),
            Err(i) => self.fn_entries[i - 1],
        }
    }

    /// Start of the block containing address `addr`, if any block does.
    pub fn block_containing(&self, addr: u32) -> Option<u32> {
        let (&start, node) = self.nodes.range(..=addr).next_back()?;
        (addr < node.end).then_some(start)
    }

    /// Callees of each function: direct call targets plus, for functions
    /// containing an indirect call, every address-taken function.
    fn callees(&self) -> BTreeMap<u32, BTreeSet<u32>> {
        let mut callees: BTreeMap<u32, BTreeSet<u32>> =
            self.fn_entries.iter().map(|&e| (e, BTreeSet::new())).collect();
        for node in self.nodes.values() {
            let owner = self.owner_of(node.start);
            if let Some(target) = node.call_target {
                callees.entry(owner).or_default().insert(target);
            }
            if node.indirect_call {
                callees.entry(owner).or_default().extend(self.address_taken.iter().copied());
            }
        }
        callees
    }
}

/// Function-level distances in milli-units: 0 for functions containing a
/// target, harmonic-mean call-chain distance otherwise. Functions that
/// cannot reach any target function are absent.
pub fn function_distances(graph: &FlowGraph, target_fns: &BTreeSet<u32>) -> BTreeMap<u32, u32> {
    // Reverse call graph: callee → callers.
    let mut callers: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for (&function, callees) in &graph.callees() {
        for &callee in callees {
            callers.entry(callee).or_default().insert(function);
        }
    }
    // Per-function hop counts to each reachable target function (BFS per
    // target over the reverse call graph).
    let mut hops: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &target in target_fns {
        let mut dist: BTreeMap<u32, u32> = BTreeMap::new();
        dist.insert(target, 0);
        let mut queue = VecDeque::from([target]);
        while let Some(function) = queue.pop_front() {
            let d = dist[&function];
            if let Some(callers) = callers.get(&function) {
                for &caller in callers {
                    if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(caller) {
                        e.insert(d + 1);
                        queue.push_back(caller);
                    }
                }
            }
        }
        for (function, d) in dist {
            hops.entry(function).or_default().push(d);
        }
    }
    hops.into_iter()
        .filter_map(|(function, hops)| {
            if target_fns.contains(&function) {
                return Some((function, 0));
            }
            // Harmonic mean over reachable targets, quantized once.
            let inv_sum: f64 = hops.iter().map(|&h| 1.0 / f64::from(h)).sum();
            if inv_sum <= 0.0 {
                return None;
            }
            let mean = hops.len() as f64 / inv_sum;
            Some((function, (mean * f64::from(MILLI)).round() as u32))
        })
        .collect()
}

/// Per-block static distances in milli-units. Target addresses anywhere
/// inside a block mark that block as distance 0. Blocks that cannot reach
/// any target are absent from the map.
pub fn block_distances(graph: &FlowGraph, targets: &[u32]) -> BTreeMap<u32, u32> {
    let target_blocks: BTreeSet<u32> =
        targets.iter().filter_map(|&a| graph.block_containing(a)).collect();
    if target_blocks.is_empty() {
        return BTreeMap::new();
    }
    let target_fns: BTreeSet<u32> = target_blocks.iter().map(|&b| graph.owner_of(b)).collect();
    let fn_dist = function_distances(graph, &target_fns);

    // Seed distances: 0 at target blocks, CALL_WEIGHT × fd(callee) at call
    // sites whose callee can reach a target.
    let mut dist: BTreeMap<u32, u32> = BTreeMap::new();
    for (&start, node) in &graph.nodes {
        let base = if target_blocks.contains(&start) {
            Some(0)
        } else {
            let direct = node.call_target.and_then(|callee| fn_dist.get(&callee)).copied();
            let indirect = if node.indirect_call {
                graph.address_taken.iter().filter_map(|f| fn_dist.get(f)).min().copied()
            } else {
                None
            };
            direct.into_iter().chain(indirect).min().map(|fd| CALL_WEIGHT.saturating_mul(fd))
        };
        if let Some(base) = base {
            dist.insert(start, base);
        }
    }

    // Reverse relaxation over intra-procedural edges: a block is one edge
    // (MILLI) farther than its closest successor, unless its seed is
    // already closer.
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&start, node) in &graph.nodes {
        for &succ in &node.succs {
            if graph.nodes.contains_key(&succ) {
                preds.entry(succ).or_default().push(start);
            }
        }
    }
    let mut queue: VecDeque<u32> = dist.keys().copied().collect();
    while let Some(block) = queue.pop_front() {
        let through = dist[&block].saturating_add(MILLI);
        let Some(preds) = preds.get(&block) else { continue };
        for &pred in preds.clone().iter() {
            let improved = match dist.get(&pred) {
                Some(&existing) => through < existing,
                None => true,
            };
            if improved {
                dist.insert(pred, through);
                queue.push_back(pred);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a graph from `(start, end, succs, call_target)` tuples with a
    /// single function per distinct entry in `fn_entries`.
    fn graph(fn_entries: &[u32], nodes: &[(u32, u32, &[u32], Option<u32>)]) -> FlowGraph {
        FlowGraph {
            fn_entries: fn_entries.to_vec(),
            address_taken: Vec::new(),
            nodes: nodes
                .iter()
                .map(|&(start, end, succs, call_target)| {
                    (
                        start,
                        FlowNode {
                            start,
                            end,
                            succs: succs.to_vec(),
                            call_target,
                            indirect_call: false,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn diamond_distances() {
        // 0x100 → {0x110, 0x120} → 0x130 (target).
        let g = graph(
            &[0x100],
            &[
                (0x100, 0x110, &[0x110, 0x120], None),
                (0x110, 0x120, &[0x130], None),
                (0x120, 0x130, &[0x130], None),
                (0x130, 0x140, &[], None),
            ],
        );
        let d = block_distances(&g, &[0x134 - 4]);
        assert_eq!(d.get(&0x130), Some(&0));
        assert_eq!(d.get(&0x110), Some(&MILLI));
        assert_eq!(d.get(&0x120), Some(&MILLI));
        assert_eq!(d.get(&0x100), Some(&(2 * MILLI)));
    }

    #[test]
    fn target_inside_block_counts() {
        let g = graph(&[0x100], &[(0x100, 0x110, &[], None)]);
        // 0x108 is inside [0x100, 0x110): the block is the target.
        assert_eq!(block_distances(&g, &[0x108]).get(&0x100), Some(&0));
        // 0x110 is past the block: no targets resolve.
        assert!(block_distances(&g, &[0x110]).is_empty());
    }

    #[test]
    fn loop_relaxation_converges() {
        // 0x100 ⇄ 0x110, with 0x110 → 0x120 (target).
        let g = graph(
            &[0x100],
            &[
                (0x100, 0x110, &[0x110], None),
                (0x110, 0x120, &[0x100, 0x120], None),
                (0x120, 0x130, &[], None),
            ],
        );
        let d = block_distances(&g, &[0x120]);
        assert_eq!(d.get(&0x120), Some(&0));
        assert_eq!(d.get(&0x110), Some(&MILLI));
        assert_eq!(d.get(&0x100), Some(&(2 * MILLI)));
    }

    #[test]
    fn unreachable_blocks_are_absent() {
        // Two disconnected functions; only one contains the target.
        let g = graph(&[0x100, 0x200], &[(0x100, 0x110, &[], None), (0x200, 0x210, &[], None)]);
        let d = block_distances(&g, &[0x100]);
        assert_eq!(d.get(&0x100), Some(&0));
        assert_eq!(d.get(&0x200), None);
    }

    #[test]
    fn no_resolvable_targets_yields_empty_map() {
        let g = graph(&[0x100], &[(0x100, 0x110, &[], None)]);
        assert!(block_distances(&g, &[0x900]).is_empty());
    }

    #[test]
    fn call_sites_seed_from_function_distance() {
        // main @0x100 calls helper @0x200; helper's block is the target.
        let g = graph(
            &[0x100, 0x200],
            &[
                (0x100, 0x110, &[0x110], Some(0x200)),
                (0x110, 0x120, &[], None),
                (0x200, 0x210, &[], None),
            ],
        );
        let d = block_distances(&g, &[0x200]);
        assert_eq!(d.get(&0x200), Some(&0));
        // The call block seeds at CALL_WEIGHT × fd(helper) = 10 × 0 = 0.
        assert_eq!(d.get(&0x100), Some(&0));
    }

    #[test]
    fn indirect_dispatch_reaches_address_taken_targets() {
        // dispatcher @0x100 ends in an indirect call; handler @0x200 is
        // address-taken and contains the target.
        let mut g = graph(&[0x100, 0x200], &[(0x100, 0x110, &[], None), (0x200, 0x210, &[], None)]);
        g.address_taken = vec![0x200];
        g.nodes.get_mut(&0x100).unwrap().indirect_call = true;
        let d = block_distances(&g, &[0x200]);
        // The dispatch block seeds at CALL_WEIGHT × fd(handler) = 0.
        assert_eq!(d.get(&0x100), Some(&0));
        // Without the indirect edge the dispatcher would be unreachable.
        g.nodes.get_mut(&0x100).unwrap().indirect_call = false;
        assert_eq!(block_distances(&g, &[0x200]).get(&0x100), None);
    }

    #[test]
    fn harmonic_mean_over_two_targets() {
        // caller @0x100 calls a @0x200 (which calls target t1 @0x300) and
        // has its own path: a is 1 call-hop from t1's function.
        let g = graph(
            &[0x100, 0x200, 0x300, 0x400],
            &[
                (0x100, 0x110, &[0x110], Some(0x200)),
                (0x110, 0x120, &[], Some(0x400)),
                (0x200, 0x210, &[], Some(0x300)),
                (0x300, 0x310, &[], None),
                (0x400, 0x410, &[], None),
            ],
        );
        let targets: BTreeSet<u32> = [0x300, 0x400].into_iter().collect();
        let fd = function_distances(&g, &targets);
        assert_eq!(fd.get(&0x300), Some(&0));
        assert_eq!(fd.get(&0x400), Some(&0));
        // one hop to one target
        assert_eq!(fd.get(&0x200), Some(&MILLI));
        // 0x100 reaches t1 in 2 hops (via a) and t2 in 1 hop: harmonic mean
        // = 2 / (1/2 + 1/1) = 4/3 ≈ 1.333 → 1333 milli.
        assert_eq!(fd.get(&0x100), Some(&1333));
    }
}
