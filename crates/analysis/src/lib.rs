//! Static analysis for the EMBSAN reproduction.
//!
//! Four passes over a [`FirmwareImage`](embsan_asm::image::FirmwareImage),
//! composing with the dynamic pipeline rather than replacing it:
//!
//! - [`cfg`] — CFG recovery straight from the text section: linear-sweep +
//!   recursive-descent decoding through the emulator's codec, basic blocks,
//!   call graph, dominator tree, reachability from the entry point, and
//!   address-taken function-pointer targets (indirect dispatch).
//! - [`audit`] — the probe-coverage auditor: cross-checks the block
//!   translator's spliced memory probes against an independent static
//!   enumeration of load/store/atomic sites, in both directions.
//! - [`allocsig`] — static allocator-signature detection, exported as
//!   ranked [`PriorKnowledge`](embsan_core::probe::PriorKnowledge) so the
//!   D-binary Prober verifies candidates against one recorded boot trace
//!   instead of running a separate discovery pass.
//! - [`races`] — lockset-based race candidates: shared RAM addresses
//!   reached on paths not provably holding an AMO spinlock, ranked for the
//!   KCSAN engine's watchpoint prioritization.
//! - [`distance`] — Böhme-style static distance from every basic block to a
//!   target set, over the call graph (harmonic mean) and block graph.
//! - [`compare`] — comparison-operand harvesting: multi-byte constants
//!   tested by compare/branch instructions, reassembled by constant
//!   propagation, with their guarding blocks.
//! - [`artifact`] — the versioned `embsan-analysis-v1` JSON document that
//!   packages the flow graph, harvest, and default targets so one analysis
//!   run feeds many directed campaigns.

pub mod allocsig;
pub mod artifact;
pub mod audit;
pub mod cfg;
pub mod compare;
pub mod distance;
pub mod races;

pub use allocsig::{function_signatures, static_priors, static_priors_from_cfg, FnSignature};
pub use artifact::AnalysisArtifact;
pub use audit::{audit, audit_with, AuditError, AuditReport};
pub use cfg::{BasicBlock, Cfg, Function, MemSite, VIRTUAL_ROOT};
pub use compare::{harvest, CmpOperand};
pub use distance::{block_distances, function_distances, FlowGraph, FlowNode};
pub use races::{lock_functions, race_candidates, watchpoint_priorities, RaceCandidate};
