//! Probe-coverage auditing.
//!
//! The whole EMBSAN design rests on one invariant: when the runtime arms
//! memory probes, **every** guest load/store/atomic that can execute does so
//! through a translated op carrying a spliced probe. A translator bug that
//! skips one op kind would silently blind the sanitizers. This module
//! audits that invariant statically: it enumerates every reachable memory
//! site from the recovered [`Cfg`](crate::cfg::Cfg), translates every
//! reachable block with the *real* block translator, and cross-checks the
//! two — in both directions (no missing probe, no spurious probe) — using
//! an instruction classifier deliberately independent of
//! [`Insn::is_mem_access`].

use std::collections::BTreeMap;

use embsan_asm::image::FirmwareImage;
use embsan_emu::bus::Bus;
use embsan_emu::error::Fault;
use embsan_emu::hook::HookConfig;
use embsan_emu::isa::Insn;
use embsan_emu::translate::{translate_block_at, Block};

use crate::cfg::Cfg;

/// Outcome of a probe-coverage audit.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Configuration the blocks were translated under.
    pub config: HookConfig,
    /// Reachable basic blocks whose translations were inspected.
    pub blocks_audited: usize,
    /// Statically enumerated memory sites cross-checked.
    pub checked_sites: usize,
    /// Translated ops that carried a memory probe.
    pub probed_sites: usize,
    /// Memory ops that would execute **without** a probe (pc, instruction).
    pub missing: Vec<(u32, Insn)>,
    /// Ops carrying a probe that are not memory accesses (pc, instruction).
    pub spurious: Vec<(u32, Insn)>,
    /// Static memory sites never covered by any translated block.
    pub uncovered: Vec<u32>,
}

impl AuditReport {
    /// Whether the translator's probe splicing is exactly right.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.spurious.is_empty() && self.uncovered.is_empty()
    }
}

/// Audit failures (the audit itself, not probe verdicts).
#[derive(Debug, Clone)]
pub enum AuditError {
    /// The image could not be loaded into a machine.
    Boot(String),
    /// A reachable block start failed to translate.
    Translate {
        /// Block start address.
        pc: u32,
        /// The fault raised by the translator.
        message: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Boot(e) => write!(f, "cannot load image: {e}"),
            AuditError::Translate { pc, message } => {
                write!(f, "block at {pc:#010x} failed to translate: {message}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Memory-access classification independent of the translator's own
/// [`Insn::is_mem_access`], so a drift in either shows up as an audit
/// violation instead of cancelling out.
fn is_memory_op(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Lb { .. }
            | Insn::Lbu { .. }
            | Insn::Lh { .. }
            | Insn::Lhu { .. }
            | Insn::Lw { .. }
            | Insn::Sb { .. }
            | Insn::Sh { .. }
            | Insn::Sw { .. }
            | Insn::AmoAddW { .. }
            | Insn::AmoSwpW { .. }
    )
}

/// Audits the real block translator over every reachable block of `image`.
///
/// # Errors
///
/// Returns [`AuditError`] if the image cannot boot a machine or a reachable
/// block fails to translate.
pub fn audit(image: &FirmwareImage, config: HookConfig) -> Result<AuditReport, AuditError> {
    audit_with(image, config, translate_block_at)
}

/// Audits an arbitrary translation function — the test seam that lets the
/// suite prove the audit *fails* when probe splicing is deliberately broken.
///
/// # Errors
///
/// Returns [`AuditError`] if the image cannot boot a machine or a reachable
/// block fails to translate.
pub fn audit_with<F>(
    image: &FirmwareImage,
    config: HookConfig,
    translate: F,
) -> Result<AuditReport, AuditError>
where
    F: Fn(&Bus, u32, HookConfig) -> Result<Block, Fault>,
{
    let machine = image.boot_machine(1).map_err(|e| AuditError::Boot(format!("{e:?}")))?;
    let bus = machine.bus();
    let cfg = Cfg::build(image);

    // pc -> probe_mem flag of the translated op covering it.
    let mut covered: BTreeMap<u32, bool> = BTreeMap::new();
    let mut report = AuditReport {
        config,
        blocks_audited: 0,
        checked_sites: 0,
        probed_sites: 0,
        missing: Vec::new(),
        spurious: Vec::new(),
        uncovered: Vec::new(),
    };

    for &start in cfg.blocks.keys() {
        report.blocks_audited += 1;
        // Translated blocks are capped at MAX_BLOCK_LEN ops; a longer
        // straight-line run continues in a follow-on block at runtime, so
        // the audit chains translations the same way.
        let mut pc = start;
        loop {
            if covered.contains_key(&pc) {
                break; // chained into a stretch already audited
            }
            let block = match translate(bus, pc, config) {
                Ok(block) => block,
                Err(fault) if pc != start => {
                    // The translator stopped at a text boundary mid-chain;
                    // nothing executable remains.
                    let _ = fault;
                    break;
                }
                Err(fault) => {
                    return Err(AuditError::Translate { pc, message: format!("{fault:?}") });
                }
            };
            let Some(last) = block.ops.last().copied() else { break };
            for op in &block.ops {
                covered.insert(op.pc, op.probe_mem);
                let is_mem = is_memory_op(&op.insn);
                if op.probe_mem {
                    report.probed_sites += 1;
                    if !is_mem || !config.mem {
                        report.spurious.push((op.pc, op.insn));
                    }
                } else if is_mem && config.mem {
                    report.missing.push((op.pc, op.insn));
                }
            }
            if last.insn.ends_block() {
                break;
            }
            pc = last.pc.wrapping_add(4);
        }
    }

    // Every statically enumerated memory site must be covered by some
    // translated op (when probes are armed at all).
    if config.mem {
        for (pc, insn) in &cfg.insns {
            if is_memory_op(insn) {
                report.checked_sites += 1;
                if !covered.contains_key(pc) {
                    report.uncovered.push(*pc);
                }
            }
        }
    }

    report.missing.sort_unstable_by_key(|(pc, _)| *pc);
    report.missing.dedup_by_key(|(pc, _)| *pc);
    report.spurious.sort_unstable_by_key(|(pc, _)| *pc);
    report.spurious.dedup_by_key(|(pc, _)| *pc);
    Ok(report)
}
