//! Static allocator-signature detection.
//!
//! The D-binary Prober (§3.2, category-3 firmware) normally needs a
//! *discovery* dry run to propose allocator candidates from runtime call
//! traces, then a second pass to verify them. This pass produces the same
//! candidate shape **statically**: an allocator maintains private state, so
//! it both loads and stores some statically addressed RAM global (a
//! freelist head, a bump pointer) *and* produces a pointer in `a0`; a free
//! routine pushes onto that same state but returns nothing. Exported as
//! ranked [`PriorKnowledge`] candidate lists, the prober verifies them
//! against a single recorded boot trace — cutting the dry-run passes from
//! two to one. Precision is secondary to recall: an impostor candidate
//! merely costs one cheap trace check, while a missing true pair forces the
//! full discovery pass.

use std::collections::{BTreeMap, BTreeSet};

use embsan_asm::image::FirmwareImage;
use embsan_core::probe::PriorKnowledge;
use embsan_emu::isa::Reg;

use crate::cfg::Cfg;

/// Per-function evidence the signature matcher scores.
#[derive(Debug, Clone, Default)]
pub struct FnSignature {
    /// Function entry address.
    pub entry: u32,
    /// Symbol name, when available.
    pub name: Option<String>,
    /// Static RAM addresses the function loads.
    pub loaded_globals: BTreeSet<u32>,
    /// Static RAM addresses the function stores.
    pub stored_globals: BTreeSet<u32>,
    /// Addresses both loaded and stored — allocator-state shaped.
    pub rw_globals: BTreeSet<u32>,
    /// Whether any instruction writes `a0` (produces a return value).
    pub writes_a0: bool,
    /// Whether the function loops (freelist walk, spin, …).
    pub has_loop: bool,
    /// Number of distinct direct callers.
    pub fan_in: usize,
}

/// Collects the evidence for every recovered function.
pub fn function_signatures(cfg: &Cfg, image: &FirmwareImage) -> BTreeMap<u32, FnSignature> {
    let ram = image.ram_base..image.ram_base.wrapping_add(image.ram_size);
    let mut signatures: BTreeMap<u32, FnSignature> = cfg
        .functions
        .values()
        .map(|f| {
            (
                f.entry,
                FnSignature {
                    entry: f.entry,
                    name: f.name.clone(),
                    has_loop: f.has_loop,
                    ..FnSignature::default()
                },
            )
        })
        .collect();

    for site in cfg.memory_sites_cached() {
        let Some(addr) = site.addr else { continue };
        if !ram.contains(&addr) || site.is_atomic {
            continue;
        }
        let Some(sig) = signatures.get_mut(&site.function) else { continue };
        if site.is_write {
            sig.stored_globals.insert(addr);
        } else {
            sig.loaded_globals.insert(addr);
        }
    }
    for function in cfg.functions.values() {
        let writes_a0 = function.blocks.iter().any(|b| {
            cfg.blocks[b].insns.iter().any(|(_, insn)| crate::cfg::insn_dest(insn) == Some(Reg::A0))
        });
        let Some(sig) = signatures.get_mut(&function.entry) else { continue };
        sig.writes_a0 = writes_a0;
        sig.rw_globals = sig.loaded_globals.intersection(&sig.stored_globals).copied().collect();
    }
    // Fan-in over the direct call graph.
    let mut fan_in: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for function in cfg.functions.values() {
        for &callee in &function.callees {
            fan_in.entry(callee).or_default().insert(function.entry);
        }
    }
    for (entry, callers) in fan_in {
        if let Some(sig) = signatures.get_mut(&entry) {
            sig.fan_in = callers.len();
        }
    }
    signatures
}

/// Maximum candidates exported per role, bounding the prober's
/// verification cross-product.
const MAX_CANDIDATES: usize = 6;

/// Runs the signature matcher and exports ranked [`PriorKnowledge`] for
/// [`probe`](embsan_core::probe::probe) in `DynamicBinary` mode.
pub fn static_priors(image: &FirmwareImage) -> PriorKnowledge {
    let cfg = Cfg::build(image);
    static_priors_from_cfg(&cfg, image)
}

/// [`static_priors`] over an already recovered CFG.
pub fn static_priors_from_cfg(cfg: &Cfg, image: &FirmwareImage) -> PriorKnowledge {
    let signatures = function_signatures(cfg, image);

    let alloc_pool: Vec<&FnSignature> =
        signatures.values().filter(|s| !s.rw_globals.is_empty() && s.writes_a0).collect();
    let free_pool: Vec<&FnSignature> =
        signatures.values().filter(|s| !s.stored_globals.is_empty() && !s.writes_a0).collect();

    let shares =
        |a: &BTreeSet<u32>, pool: &[&FnSignature], of: fn(&FnSignature) -> &BTreeSet<u32>| {
            pool.iter().any(|other| of(other).intersection(a).next().is_some())
        };

    let mut alloc_ranked: Vec<(i32, u32)> = alloc_pool
        .iter()
        .map(|s| {
            let score = 4 * i32::from(shares(&s.rw_globals, &free_pool, |f| &f.stored_globals))
                + 2 * i32::from(s.has_loop)
                + (s.fan_in.min(3) as i32);
            (score, s.entry)
        })
        .collect();
    let mut free_ranked: Vec<(i32, u32)> = free_pool
        .iter()
        .map(|s| {
            let score = 4 * i32::from(shares(&s.stored_globals, &alloc_pool, |f| &f.rw_globals))
                + i32::from(!s.rw_globals.is_empty())
                + (s.fan_in.min(3) as i32);
            (score, s.entry)
        })
        .collect();
    alloc_ranked.sort_by_key(|&(score, entry)| (std::cmp::Reverse(score), entry));
    free_ranked.sort_by_key(|&(score, entry)| (std::cmp::Reverse(score), entry));

    PriorKnowledge {
        alloc_candidates: alloc_ranked.into_iter().take(MAX_CANDIDATES).map(|(_, e)| e).collect(),
        free_candidates: free_ranked.into_iter().take(MAX_CANDIDATES).map(|(_, e)| e).collect(),
        ..PriorKnowledge::default()
    }
}
