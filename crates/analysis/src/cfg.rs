//! Control-flow recovery over firmware images.
//!
//! Rebuilds a basic-block CFG directly from a [`FirmwareImage`]'s text
//! section using the emulator's own decoder — a combined linear-sweep /
//! recursive-descent pass. Roots are the entry point, the ready point, any
//! `Func` symbols (absent on stripped images) and every address-taken text
//! constant materialized by a `lui`+`ori` pair (how `la` lowers large
//! constants), which is what makes indirect dispatch through function-
//! pointer tables — the executor's `sys_table` — statically reachable.
//!
//! On top of the block graph the module derives a call graph, an iterative
//! dominator tree (Cooper–Harvey–Kennedy over a virtual root), per-function
//! loop facts, and a constant-propagating memory-site enumeration shared by
//! the allocator-signature and lockset passes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use embsan_asm::image::{FirmwareImage, SymbolKind};
use embsan_emu::isa::{Insn, Reg, Word};
use embsan_emu::profile::{Arch, ArchProfile, Endian};

/// Sentinel dominator-tree parent of root blocks.
pub const VIRTUAL_ROOT: u32 = u32::MAX;

/// A recovered basic block.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// Instructions with their addresses, in program order.
    pub insns: Vec<(u32, Insn)>,
    /// Intra-procedural successors (branch target, fall-through, resume
    /// point after a call/trap). Call *targets* are not successors.
    pub succs: Vec<u32>,
    /// Direct call target if the block ends in `jal rd≠r0`.
    pub call_target: Option<u32>,
    /// Whether the block ends in an indirect call (`jalr rd≠r0`).
    pub indirect_call: bool,
}

/// A recovered function: an entry point plus the blocks assigned to it.
#[derive(Debug, Clone)]
pub struct Function {
    /// Entry address.
    pub entry: u32,
    /// Symbol name, when the image carries symbols.
    pub name: Option<String>,
    /// Member block start addresses, ascending.
    pub blocks: Vec<u32>,
    /// Direct callees (function entry addresses).
    pub callees: BTreeSet<u32>,
    /// Whether the function contains a back edge (a loop).
    pub has_loop: bool,
}

/// A statically enumerated memory access site.
#[derive(Debug, Clone, Copy)]
pub struct MemSite {
    /// Address of the load/store/atomic instruction.
    pub pc: u32,
    /// Start of the containing block.
    pub block: u32,
    /// Entry of the containing function.
    pub function: u32,
    /// Effective address when constant propagation resolves it.
    pub addr: Option<u32>,
    /// Access width in bytes.
    pub size: u8,
    /// Whether the access writes memory.
    pub is_write: bool,
    /// Whether the access is atomic (`amoadd.w`/`amoswp.w`).
    pub is_atomic: bool,
}

/// The recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Architecture the image targets.
    pub arch: Arch,
    /// Image entry point.
    pub entry: u32,
    /// Text base address.
    pub text_base: u32,
    /// Text length in bytes (truncated to whole words).
    pub text_len: u32,
    /// Every reachable decoded instruction, keyed by address.
    pub insns: BTreeMap<u32, Insn>,
    /// Basic blocks keyed by start address.
    pub blocks: BTreeMap<u32, BasicBlock>,
    /// Functions keyed by entry address.
    pub functions: BTreeMap<u32, Function>,
    /// Text addresses materialized as constants (address-taken targets).
    pub address_taken: BTreeSet<u32>,
    /// Immediate dominator of each block ([`VIRTUAL_ROOT`] for roots).
    pub idom: BTreeMap<u32, u32>,
    /// Lazily computed memory-site enumeration. `Cfg` is immutable after
    /// [`Cfg::build`], so the cache never needs invalidation; cloning a
    /// `Cfg` clones whatever is already cached.
    mem_sites: std::sync::OnceLock<Vec<MemSite>>,
}

/// How an instruction leaves a block.
enum Flow {
    /// Straight-line; not a block end.
    Fall,
    /// Conditional branch to the target, falling through otherwise.
    Branch(u32),
    /// Unconditional direct jump.
    Jump(u32),
    /// Direct call; execution resumes at `pc + 4`.
    Call(u32),
    /// Indirect call (`jalr rd≠r0`); resumes at `pc + 4`.
    IndirectCall,
    /// Indirect jump or return; successors unknown.
    IndirectJump,
    /// Ends the block but execution resumes at `pc + 4` (trap, idle).
    Resume,
    /// Execution does not continue past this instruction.
    Stop,
}

fn flow(insn: &Insn, pc: u32) -> Flow {
    match *insn {
        Insn::Beq { offset, .. }
        | Insn::Bne { offset, .. }
        | Insn::Blt { offset, .. }
        | Insn::Bltu { offset, .. }
        | Insn::Bge { offset, .. }
        | Insn::Bgeu { offset, .. } => Flow::Branch(pc.wrapping_add(offset as u32)),
        Insn::Jal { rd: Reg::R0, offset } => Flow::Jump(pc.wrapping_add(offset as u32)),
        Insn::Jal { offset, .. } => Flow::Call(pc.wrapping_add(offset as u32)),
        Insn::Jalr { rd: Reg::R0, .. } => Flow::IndirectJump,
        Insn::Jalr { .. } => Flow::IndirectCall,
        Insn::Ecall { .. } | Insn::Wfi => Flow::Resume,
        Insn::Eret | Insn::Halt { .. } | Insn::Brk => Flow::Stop,
        _ => Flow::Fall,
    }
}

/// Register destination of an instruction, if any.
pub(crate) fn insn_dest(insn: &Insn) -> Option<Reg> {
    match *insn {
        Insn::Add { rd, .. }
        | Insn::Sub { rd, .. }
        | Insn::And { rd, .. }
        | Insn::Or { rd, .. }
        | Insn::Xor { rd, .. }
        | Insn::Sll { rd, .. }
        | Insn::Srl { rd, .. }
        | Insn::Sra { rd, .. }
        | Insn::Mul { rd, .. }
        | Insn::Mulh { rd, .. }
        | Insn::Divu { rd, .. }
        | Insn::Remu { rd, .. }
        | Insn::Slt { rd, .. }
        | Insn::Sltu { rd, .. }
        | Insn::Addi { rd, .. }
        | Insn::Andi { rd, .. }
        | Insn::Ori { rd, .. }
        | Insn::Xori { rd, .. }
        | Insn::Slli { rd, .. }
        | Insn::Srli { rd, .. }
        | Insn::Srai { rd, .. }
        | Insn::Slti { rd, .. }
        | Insn::Sltiu { rd, .. }
        | Insn::Lui { rd, .. }
        | Insn::Auipc { rd, .. }
        | Insn::Lb { rd, .. }
        | Insn::Lbu { rd, .. }
        | Insn::Lh { rd, .. }
        | Insn::Lhu { rd, .. }
        | Insn::Lw { rd, .. }
        | Insn::AmoAddW { rd, .. }
        | Insn::AmoSwpW { rd, .. }
        | Insn::Jal { rd, .. }
        | Insn::Jalr { rd, .. }
        | Insn::Csrr { rd, .. } => Some(rd),
        _ => None,
    }
}

/// A constant-propagation register file: `Some(v)` when the register
/// provably holds `v` on every path reaching this point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RegState([Option<u32>; 16]);

impl RegState {
    pub(crate) fn unknown() -> RegState {
        let mut regs = [None; 16];
        regs[0] = Some(0);
        RegState(regs)
    }

    pub(crate) fn get(&self, reg: Reg) -> Option<u32> {
        self.0[reg.index()]
    }

    fn set(&mut self, reg: Reg, value: Option<u32>) {
        if reg != Reg::R0 {
            self.0[reg.index()] = value;
        }
    }

    /// Pointwise meet; returns whether `self` changed.
    fn meet(&mut self, other: &RegState) -> bool {
        let mut changed = false;
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            if *mine != *theirs && mine.is_some() {
                *mine = None;
                changed = true;
            }
        }
        changed
    }

    /// Invalidates registers a callee may overwrite (the argument registers,
    /// the scratch register and the link register; `r7`–`r11` are preserved
    /// by the prologue/epilogue convention).
    fn clobber_caller_saved(&mut self) {
        for reg in [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5, Reg::SCRATCH, Reg::LR] {
            self.set(reg, None);
        }
    }

    /// Applies one instruction's effect on the register file.
    pub(crate) fn step(&mut self, insn: &Insn) {
        let value = match *insn {
            Insn::Lui { imm, .. } => Some(imm),
            Insn::Addi { rs1, imm, .. } => self.get(rs1).map(|v| v.wrapping_add(imm as u32)),
            Insn::Ori { rs1, imm, .. } => self.get(rs1).map(|v| v | imm as u32),
            Insn::Andi { rs1, imm, .. } => self.get(rs1).map(|v| v & imm as u32),
            Insn::Xori { rs1, imm, .. } => self.get(rs1).map(|v| v ^ imm as u32),
            Insn::Slli { rs1, shamt, .. } => self.get(rs1).map(|v| v << shamt),
            Insn::Srli { rs1, shamt, .. } => self.get(rs1).map(|v| v >> shamt),
            Insn::Add { rs1, rs2, .. } => binop(self, rs1, rs2, u32::wrapping_add),
            Insn::Sub { rs1, rs2, .. } => binop(self, rs1, rs2, u32::wrapping_sub),
            Insn::Or { rs1, rs2, .. } => binop(self, rs1, rs2, |a, b| a | b),
            Insn::And { rs1, rs2, .. } => binop(self, rs1, rs2, |a, b| a & b),
            Insn::Xor { rs1, rs2, .. } => binop(self, rs1, rs2, |a, b| a ^ b),
            _ => None,
        };
        if let Some(rd) = insn_dest(insn) {
            self.set(rd, value);
        }
    }
}

fn binop(state: &RegState, rs1: Reg, rs2: Reg, op: fn(u32, u32) -> u32) -> Option<u32> {
    Some(op(state.get(rs1)?, state.get(rs2)?))
}

/// Memory-access shape of an instruction, as `(base, offset, size, write,
/// atomic)`.
fn mem_shape(insn: &Insn) -> Option<(Reg, i32, u8, bool, bool)> {
    match *insn {
        Insn::Lb { rs1, imm, .. } | Insn::Lbu { rs1, imm, .. } => Some((rs1, imm, 1, false, false)),
        Insn::Lh { rs1, imm, .. } | Insn::Lhu { rs1, imm, .. } => Some((rs1, imm, 2, false, false)),
        Insn::Lw { rs1, imm, .. } => Some((rs1, imm, 4, false, false)),
        Insn::Sb { rs1, imm, .. } => Some((rs1, imm, 1, true, false)),
        Insn::Sh { rs1, imm, .. } => Some((rs1, imm, 2, true, false)),
        Insn::Sw { rs1, imm, .. } => Some((rs1, imm, 4, true, false)),
        Insn::AmoAddW { rs1, .. } | Insn::AmoSwpW { rs1, .. } => Some((rs1, 0, 4, true, true)),
        _ => None,
    }
}

impl Cfg {
    /// Recovers the CFG of an image.
    pub fn build(image: &FirmwareImage) -> Cfg {
        let profile = ArchProfile::for_arch(image.arch);
        let text_base = image.rom_base;
        let text_len = (image.text.len() as u32) & !3;
        let decode_at = |addr: u32| -> Option<Insn> {
            if addr < text_base || addr >= text_base + text_len || !addr.is_multiple_of(4) {
                return None;
            }
            let off = (addr - text_base) as usize;
            let bytes: [u8; 4] = image.text[off..off + 4].try_into().ok()?;
            Insn::decode(Word::from_bytes(bytes, profile.endian)).ok()
        };

        let address_taken = scan_address_taken(image, profile.endian, text_base, text_len);

        // Roots: entry, ready, function symbols and address-taken targets.
        let mut roots: BTreeSet<u32> = BTreeSet::new();
        roots.insert(image.entry);
        roots.extend(image.ready);
        roots.extend(image.symbols.iter().filter(|s| s.kind == SymbolKind::Func).map(|s| s.addr));
        roots.extend(address_taken.iter().copied());
        roots.retain(|&a| decode_at(a).is_some());

        // Recursive-descent walk: mark reachable instructions and leaders.
        let mut insns: BTreeMap<u32, Insn> = BTreeMap::new();
        let mut leaders: BTreeSet<u32> = roots.clone();
        let mut fn_entries: BTreeSet<u32> = roots.clone();
        let mut queue: VecDeque<u32> = roots.iter().copied().collect();
        let mut walked: BTreeSet<u32> = BTreeSet::new();
        while let Some(leader) = queue.pop_front() {
            if !walked.insert(leader) {
                continue;
            }
            let mut pc = leader;
            while let Some(insn) = decode_at(pc) {
                insns.insert(pc, insn);
                let mut enqueue = |target: u32, leaders: &mut BTreeSet<u32>| {
                    if decode_at(target).is_some() && leaders.insert(target) {
                        queue.push_back(target);
                    }
                };
                match flow(&insn, pc) {
                    Flow::Fall => {
                        pc = pc.wrapping_add(4);
                        if leaders.contains(&pc) {
                            break; // falls into a block already queued
                        }
                        continue;
                    }
                    Flow::Branch(target) => {
                        enqueue(target, &mut leaders);
                        enqueue(pc.wrapping_add(4), &mut leaders);
                    }
                    Flow::Jump(target) => enqueue(target, &mut leaders),
                    Flow::Call(target) => {
                        fn_entries.insert(target);
                        enqueue(target, &mut leaders);
                        enqueue(pc.wrapping_add(4), &mut leaders);
                    }
                    Flow::IndirectCall | Flow::Resume => enqueue(pc.wrapping_add(4), &mut leaders),
                    Flow::IndirectJump | Flow::Stop => {}
                }
                break;
            }
        }

        // Block construction: split the walked instructions at leaders.
        let mut blocks: BTreeMap<u32, BasicBlock> = BTreeMap::new();
        for &leader in &leaders {
            if !insns.contains_key(&leader) {
                continue;
            }
            let mut block = BasicBlock {
                start: leader,
                insns: Vec::new(),
                succs: Vec::new(),
                call_target: None,
                indirect_call: false,
            };
            let mut pc = leader;
            loop {
                let insn = insns[&pc];
                block.insns.push((pc, insn));
                let next = pc.wrapping_add(4);
                let succ = |target: u32, block: &mut BasicBlock| {
                    if insns.contains_key(&target) {
                        block.succs.push(target);
                    }
                };
                match flow(&insn, pc) {
                    Flow::Fall => {
                        if leaders.contains(&next) {
                            succ(next, &mut block);
                            break;
                        }
                        if !insns.contains_key(&next) {
                            break;
                        }
                        pc = next;
                        continue;
                    }
                    Flow::Branch(target) => {
                        succ(target, &mut block);
                        succ(next, &mut block);
                    }
                    Flow::Jump(target) => succ(target, &mut block),
                    Flow::Call(target) => {
                        block.call_target = Some(target);
                        succ(next, &mut block);
                    }
                    Flow::IndirectCall => {
                        block.indirect_call = true;
                        succ(next, &mut block);
                    }
                    Flow::Resume => succ(next, &mut block),
                    Flow::IndirectJump | Flow::Stop => {}
                }
                break;
            }
            blocks.insert(leader, block);
        }

        // Functions: contiguous assignment over the entry set.
        fn_entries.retain(|e| blocks.contains_key(e));
        let entries: Vec<u32> = fn_entries.iter().copied().collect();
        let owner = |block_start: u32| -> u32 {
            match entries.binary_search(&block_start) {
                Ok(i) => entries[i],
                Err(0) => entries.first().copied().unwrap_or(block_start),
                Err(i) => entries[i - 1],
            }
        };
        let mut functions: BTreeMap<u32, Function> = entries
            .iter()
            .map(|&entry| {
                (
                    entry,
                    Function {
                        entry,
                        name: image
                            .symbols
                            .iter()
                            .find(|s| s.kind == SymbolKind::Func && s.addr == entry)
                            .map(|s| s.name.clone()),
                        blocks: Vec::new(),
                        callees: BTreeSet::new(),
                        has_loop: false,
                    },
                )
            })
            .collect();
        for block in blocks.values() {
            if let Some(function) = functions.get_mut(&owner(block.start)) {
                function.blocks.push(block.start);
                function.callees.extend(block.call_target);
            }
        }

        let mut cfg = Cfg {
            arch: image.arch,
            entry: image.entry,
            text_base,
            text_len,
            insns,
            blocks,
            functions,
            address_taken,
            idom: BTreeMap::new(),
            mem_sites: std::sync::OnceLock::new(),
        };
        cfg.idom = cfg.compute_dominators(&fn_entries);
        let loops: Vec<u32> = cfg
            .functions
            .values()
            .filter(|f| {
                f.blocks.iter().any(|&b| {
                    cfg.blocks[&b]
                        .succs
                        .iter()
                        .any(|&s| cfg.owner_of(s) == f.entry && cfg.dominates(s, b))
                })
            })
            .map(|f| f.entry)
            .collect();
        for entry in loops {
            if let Some(function) = cfg.functions.get_mut(&entry) {
                function.has_loop = true;
            }
        }
        cfg
    }

    /// Entry of the function owning the block starting at `block_start`.
    pub fn owner_of(&self, block_start: u32) -> u32 {
        let entries: Vec<u32> = self.functions.keys().copied().collect();
        match entries.binary_search(&block_start) {
            Ok(i) => entries[i],
            Err(0) => entries.first().copied().unwrap_or(block_start),
            Err(i) => entries[i - 1],
        }
    }

    /// Whether block `a` dominates block `b`.
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        let mut cursor = b;
        loop {
            if cursor == a {
                return true;
            }
            match self.idom.get(&cursor) {
                Some(&parent) if parent != VIRTUAL_ROOT && parent != cursor => cursor = parent,
                _ => return a == VIRTUAL_ROOT,
            }
        }
    }

    /// Iterative dominator computation over the block graph, with a virtual
    /// root fronting every function entry (so call-reached code has a
    /// dominator chain even though call edges are not block successors).
    fn compute_dominators(&self, fn_entries: &BTreeSet<u32>) -> BTreeMap<u32, u32> {
        let starts: Vec<u32> = self.blocks.keys().copied().collect();
        let index: BTreeMap<u32, usize> = starts.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = starts.len();
        // Virtual-root children: function entries plus orphan blocks.
        let mut root_children: BTreeSet<usize> = fn_entries.iter().map(|e| index[e]).collect();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, block) in &self.blocks {
            for succ in &block.succs {
                preds[index[succ]].push(index[s]);
            }
        }
        for (i, p) in preds.iter().enumerate() {
            if p.is_empty() {
                root_children.insert(i);
            }
        }

        // Reverse postorder from the virtual root.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for &child in &root_children {
            if seen[child] {
                continue;
            }
            seen[child] = true;
            stack.push((child, 0));
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let succs = &self.blocks[&starts[node]].succs;
                if *next < succs.len() {
                    let succ = index[&succs[*next]];
                    *next += 1;
                    if !seen[succ] {
                        seen[succ] = true;
                        stack.push((succ, 0));
                    }
                } else {
                    order.push(node);
                    stack.pop();
                }
            }
        }
        order.reverse();
        let mut rpo = vec![usize::MAX; n];
        for (i, &node) in order.iter().enumerate() {
            rpo[node] = i;
        }

        const ROOT: usize = usize::MAX;
        let mut idom: Vec<Option<usize>> = vec![None; n];
        let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
            loop {
                if a == b {
                    return a;
                }
                if a == ROOT || b == ROOT {
                    return ROOT;
                }
                while a != ROOT && b != ROOT && rpo[a] > rpo[b] {
                    a = idom[a].unwrap_or(ROOT);
                }
                while b != ROOT && a != ROOT && rpo[b] > rpo[a] {
                    b = idom[b].unwrap_or(ROOT);
                }
            }
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &order {
                let mut new_idom = if root_children.contains(&node) { Some(ROOT) } else { None };
                for &pred in &preds[node] {
                    if rpo[pred] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[pred].is_none() && !root_children.contains(&pred) {
                        continue; // not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(current) => intersect(&idom, pred, current),
                    });
                }
                if new_idom != idom[node] {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }

        starts
            .iter()
            .enumerate()
            .filter_map(|(i, &start)| {
                idom[i].map(|parent| {
                    (start, if parent == ROOT { VIRTUAL_ROOT } else { starts[parent] })
                })
            })
            .collect()
    }

    /// Fixpoint constant-propagation register states at each block entry of
    /// `function`, keyed by block start.
    pub(crate) fn reg_states(&self, function: &Function) -> BTreeMap<u32, RegState> {
        let mut states: BTreeMap<u32, RegState> = BTreeMap::new();
        states.insert(function.entry, RegState::unknown());
        let mut queue: VecDeque<u32> = function.blocks.iter().copied().collect();
        while let Some(start) = queue.pop_front() {
            let Some(&in_state) = states.get(&start) else { continue };
            let block = &self.blocks[&start];
            let mut state = in_state;
            for (_, insn) in &block.insns {
                state.step(insn);
            }
            if block.call_target.is_some() || block.indirect_call {
                state.clobber_caller_saved();
            }
            for &succ in &block.succs {
                if self.owner_of(succ) != function.entry {
                    continue;
                }
                let changed = match states.get_mut(&succ) {
                    Some(existing) => existing.meet(&state),
                    None => {
                        states.insert(succ, state);
                        true
                    }
                };
                if changed {
                    queue.push_back(succ);
                }
            }
        }
        states
    }

    /// Statically enumerates every reachable memory-access site, resolving
    /// effective addresses by constant propagation where possible.
    ///
    /// Returns an owned copy; prefer [`Cfg::memory_sites_cached`] when a
    /// borrow suffices — this method delegates to the same cache, so the
    /// constant-propagation pass still runs at most once per `Cfg`.
    pub fn memory_sites(&self) -> Vec<MemSite> {
        self.memory_sites_cached().to_vec()
    }

    /// Borrowed view of the memoized memory-site enumeration. The first
    /// call computes the sites; later calls (and [`Cfg::memory_sites`])
    /// reuse them. A `Cfg` is immutable once built, so the cache cannot go
    /// stale and no invalidation hook exists.
    pub fn memory_sites_cached(&self) -> &[MemSite] {
        self.mem_sites.get_or_init(|| self.compute_memory_sites())
    }

    fn compute_memory_sites(&self) -> Vec<MemSite> {
        let mut sites = Vec::new();
        for function in self.functions.values() {
            let states = self.reg_states(function);
            for &start in &function.blocks {
                let Some(&in_state) = states.get(&start) else { continue };
                let mut state = in_state;
                for (pc, insn) in &self.blocks[&start].insns {
                    if let Some((base, offset, size, is_write, is_atomic)) = mem_shape(insn) {
                        sites.push(MemSite {
                            pc: *pc,
                            block: start,
                            function: function.entry,
                            addr: state.get(base).map(|b| b.wrapping_add(offset as u32)),
                            size,
                            is_write,
                            is_atomic,
                        });
                    }
                    state.step(insn);
                }
            }
        }
        sites
    }

    /// Number of reachable instructions.
    pub fn reachable_insns(&self) -> usize {
        self.insns.len()
    }

    /// Fraction of the text section that is reachable code, in `[0, 1]`.
    pub fn reachable_fraction(&self) -> f64 {
        if self.text_len == 0 {
            return 0.0;
        }
        (self.insns.len() as f64) * 4.0 / f64::from(self.text_len)
    }
}

/// Linear sweep for address-taken text constants: tracks `lui`/`ori`/`addi`
/// constant formation (the `la` lowering) and records any materialized value
/// that lands word-aligned inside the text section.
fn scan_address_taken(
    image: &FirmwareImage,
    endian: Endian,
    text_base: u32,
    text_len: u32,
) -> BTreeSet<u32> {
    let mut taken = BTreeSet::new();
    let mut state = RegState::unknown();
    let mut addr = text_base;
    while addr < text_base + text_len {
        let off = (addr - text_base) as usize;
        let bytes: [u8; 4] = image.text[off..off + 4].try_into().unwrap();
        match Insn::decode(Word::from_bytes(bytes, endian)) {
            Ok(insn) => {
                state.step(&insn);
                if matches!(insn, Insn::Ori { .. } | Insn::Addi { .. }) {
                    if let Some(value) = insn_dest(&insn).and_then(|rd| state.get(rd)) {
                        if value % 4 == 0
                            && value >= text_base
                            && value < text_base + text_len
                            && value != 0
                        {
                            taken.insert(value);
                        }
                    }
                }
                if insn.ends_block() {
                    state = RegState::unknown();
                }
            }
            Err(_) => state = RegState::unknown(),
        }
        addr += 4;
    }
    taken
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_classifies_calls_and_returns() {
        assert!(matches!(flow(&Insn::Jal { rd: Reg::LR, offset: 16 }, 0x100), Flow::Call(0x110)));
        assert!(matches!(flow(&Insn::Jal { rd: Reg::R0, offset: -8 }, 0x100), Flow::Jump(0xF8)));
        assert!(matches!(
            flow(&Insn::Jalr { rd: Reg::R0, rs1: Reg::LR, imm: 0 }, 0x100),
            Flow::IndirectJump
        ));
        assert!(matches!(
            flow(&Insn::Jalr { rd: Reg::LR, rs1: Reg::R9, imm: 0 }, 0x100),
            Flow::IndirectCall
        ));
    }

    #[test]
    fn reg_state_tracks_la_pairs() {
        let mut state = RegState::unknown();
        state.step(&Insn::Lui { rd: Reg::R7, imm: 0x0010_1000 });
        state.step(&Insn::Ori { rd: Reg::R7, rs1: Reg::R7, imm: 0x234 });
        assert_eq!(state.get(Reg::R7), Some(0x0010_1234));
        state.step(&Insn::Addi { rd: Reg::R8, rs1: Reg::R7, imm: -4 });
        assert_eq!(state.get(Reg::R8), Some(0x0010_1230));
        // A load makes the destination unknown.
        state.step(&Insn::Lw { rd: Reg::R7, rs1: Reg::R8, imm: 0 });
        assert_eq!(state.get(Reg::R7), None);
        // R0 is always zero.
        state.step(&Insn::Addi { rd: Reg::R0, rs1: Reg::R0, imm: 5 });
        assert_eq!(state.get(Reg::R0), Some(0));
    }

    #[test]
    fn meet_keeps_agreeing_constants_only() {
        let mut a = RegState::unknown();
        a.step(&Insn::Lui { rd: Reg::R7, imm: 0x1000 });
        a.step(&Insn::Lui { rd: Reg::R8, imm: 0x2000 });
        let mut b = RegState::unknown();
        b.step(&Insn::Lui { rd: Reg::R7, imm: 0x1000 });
        b.step(&Insn::Lui { rd: Reg::R8, imm: 0x3000 });
        assert!(a.meet(&b));
        assert_eq!(a.get(Reg::R7), Some(0x1000));
        assert_eq!(a.get(Reg::R8), None);
        assert!(!a.meet(&b));
    }
}
