//! The versioned `embsan-analysis-v1` artifact.
//!
//! One static-analysis run feeds many fuzzing campaigns (the Ember-IO
//! amortization idiom): `embsan analyze --out FILE` serializes everything a
//! directed campaign needs — the flow graph for the distance pass, the
//! harvested comparison operands, and the default target set (race-candidate
//! access sites) — as a small, versioned, dependency-free JSON document.
//! `embsan fuzz --analysis FILE` loads it back without re-running the
//! analyzer or even having the analyzer's image-parsing machinery wired up.
//!
//! The schema (all numbers are non-negative integers; arrays are sorted by
//! their first element):
//!
//! ```json
//! {
//!   "version": "embsan-analysis-v1",
//!   "arch": "Armv",
//!   "entry": 4096,
//!   "text_base": 4096,
//!   "text_len": 65536,
//!   "fn_entries": [4096, 4352],
//!   "address_taken": [4352],
//!   "blocks": [[start, end, call_target_or_-1, indirect_0_or_1, [succ, ...]], ...],
//!   "cmp_operands": [[value, guard_block], ...],
//!   "default_targets": [addr, ...]
//! }
//! ```
//!
//! Serialization is hand-rolled (this workspace takes no external
//! dependencies); the parser below is a minimal recursive-descent JSON
//! reader sufficient for this schema.

use std::collections::BTreeMap;

use embsan_asm::image::FirmwareImage;
use embsan_emu::profile::Arch;

use crate::cfg::Cfg;
use crate::compare::{self, CmpOperand};
use crate::distance::{FlowGraph, FlowNode};
use crate::races;

/// The artifact format version tag.
pub const VERSION: &str = "embsan-analysis-v1";

/// A serialized analysis run: everything a directed campaign consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisArtifact {
    /// Architecture of the analyzed image.
    pub arch: Arch,
    /// Image entry point (used to cross-check artifact/image pairing).
    pub entry: u32,
    /// Text base address.
    pub text_base: u32,
    /// Text length in bytes.
    pub text_len: u32,
    /// The flow graph the distance pass runs on.
    pub graph: FlowGraph,
    /// Harvested comparison operands with their guarding blocks.
    pub cmp_operands: Vec<CmpOperand>,
    /// Default direction targets: race-candidate access sites, most
    /// suspicious first (the order [`races::race_candidates`] ranks them).
    pub default_targets: Vec<u32>,
}

fn arch_name(arch: Arch) -> &'static str {
    match arch {
        Arch::Armv => "Armv",
        Arch::Mipsv => "Mipsv",
        Arch::X86v => "X86v",
    }
}

fn arch_from_name(name: &str) -> Option<Arch> {
    match name {
        "Armv" => Some(Arch::Armv),
        "Mipsv" => Some(Arch::Mipsv),
        "X86v" => Some(Arch::X86v),
        _ => None,
    }
}

impl AnalysisArtifact {
    /// Runs the full analysis over an image and packages the result.
    pub fn from_image(image: &FirmwareImage) -> AnalysisArtifact {
        let cfg = Cfg::build(image);
        AnalysisArtifact::from_cfg(&cfg, image)
    }

    /// Packages an already-built [`Cfg`] (avoids re-recovering the graph
    /// when the caller also prints CFG diagnostics).
    pub fn from_cfg(cfg: &Cfg, image: &FirmwareImage) -> AnalysisArtifact {
        let mut default_targets = Vec::new();
        for candidate in races::race_candidates(cfg, image) {
            for &pc in &candidate.unlocked_pcs {
                if !default_targets.contains(&pc) {
                    default_targets.push(pc);
                }
            }
        }
        AnalysisArtifact {
            arch: cfg.arch,
            entry: cfg.entry,
            text_base: cfg.text_base,
            text_len: cfg.text_len,
            graph: FlowGraph::from_cfg(cfg),
            cmp_operands: compare::harvest(cfg),
            default_targets,
        }
    }

    /// Whether this artifact was produced from (a build identical to)
    /// `image`. Campaigns refuse mismatched artifacts rather than steering
    /// toward addresses from some other firmware.
    pub fn matches_image(&self, image: &FirmwareImage) -> bool {
        self.arch == image.arch
            && self.entry == image.entry
            && self.text_base == image.rom_base
            && self.text_len == image.text.len() as u32 & !3
    }

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": \"{VERSION}\",\n"));
        out.push_str(&format!("  \"arch\": \"{}\",\n", arch_name(self.arch)));
        out.push_str(&format!("  \"entry\": {},\n", self.entry));
        out.push_str(&format!("  \"text_base\": {},\n", self.text_base));
        out.push_str(&format!("  \"text_len\": {},\n", self.text_len));
        let entries: Vec<String> = self.graph.fn_entries.iter().map(u32::to_string).collect();
        out.push_str(&format!("  \"fn_entries\": [{}],\n", entries.join(", ")));
        let taken: Vec<String> = self.graph.address_taken.iter().map(u32::to_string).collect();
        out.push_str(&format!("  \"address_taken\": [{}],\n", taken.join(", ")));
        out.push_str("  \"blocks\": [\n");
        let blocks: Vec<String> = self
            .graph
            .nodes
            .values()
            .map(|node| {
                let succs: Vec<String> = node.succs.iter().map(u32::to_string).collect();
                let call = node.call_target.map_or(-1, i64::from);
                format!(
                    "    [{}, {}, {}, {}, [{}]]",
                    node.start,
                    node.end,
                    call,
                    u8::from(node.indirect_call),
                    succs.join(", ")
                )
            })
            .collect();
        out.push_str(&blocks.join(",\n"));
        out.push_str("\n  ],\n");
        let operands: Vec<String> =
            self.cmp_operands.iter().map(|op| format!("[{}, {}]", op.value, op.block)).collect();
        out.push_str(&format!("  \"cmp_operands\": [{}],\n", operands.join(", ")));
        let targets: Vec<String> = self.default_targets.iter().map(u32::to_string).collect();
        out.push_str(&format!("  \"default_targets\": [{}]\n", targets.join(", ")));
        out.push_str("}\n");
        out
    }

    /// Parses the JSON document, validating the version tag and schema.
    pub fn parse(text: &str) -> Result<AnalysisArtifact, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("artifact root must be an object")?;
        let version = get(obj, "version")?.as_str().ok_or("version must be a string")?;
        if version != VERSION {
            return Err(format!("unsupported artifact version {version:?} (want {VERSION:?})"));
        }
        let arch_text = get(obj, "arch")?.as_str().ok_or("arch must be a string")?;
        let arch =
            arch_from_name(arch_text).ok_or_else(|| format!("unknown arch {arch_text:?}"))?;
        let entry = get(obj, "entry")?.as_u32().ok_or("entry must be a u32")?;
        let text_base = get(obj, "text_base")?.as_u32().ok_or("text_base must be a u32")?;
        let text_len = get(obj, "text_len")?.as_u32().ok_or("text_len must be a u32")?;
        let fn_entries = u32_array(get(obj, "fn_entries")?, "fn_entries")?;
        let address_taken = u32_array(get(obj, "address_taken")?, "address_taken")?;
        let mut nodes = BTreeMap::new();
        for item in get(obj, "blocks")?.as_array().ok_or("blocks must be an array")? {
            let fields = item.as_array().ok_or("each block must be an array")?;
            if fields.len() != 5 {
                return Err("each block must be [start, end, call, indirect, [succs]]".to_string());
            }
            let start = fields[0].as_u32().ok_or("block start must be a u32")?;
            let end = fields[1].as_u32().ok_or("block end must be a u32")?;
            let call_target = match fields[2].as_i64().ok_or("block call must be an integer")? {
                -1 => None,
                c => Some(u32::try_from(c).map_err(|_| "block call out of range")?),
            };
            let indirect_call = match fields[3].as_i64().ok_or("block indirect must be 0/1")? {
                0 => false,
                1 => true,
                other => return Err(format!("block indirect must be 0/1, got {other}")),
            };
            let succs = u32_array(&fields[4], "block succs")?;
            nodes.insert(start, FlowNode { start, end, succs, call_target, indirect_call });
        }
        let mut cmp_operands = Vec::new();
        for item in get(obj, "cmp_operands")?.as_array().ok_or("cmp_operands must be an array")? {
            let pair = item.as_array().ok_or("each operand must be an array")?;
            if pair.len() != 2 {
                return Err("each operand must be [value, block]".to_string());
            }
            cmp_operands.push(CmpOperand {
                value: pair[0].as_u32().ok_or("operand value must be a u32")?,
                block: pair[1].as_u32().ok_or("operand block must be a u32")?,
            });
        }
        let default_targets = u32_array(get(obj, "default_targets")?, "default_targets")?;
        Ok(AnalysisArtifact {
            arch,
            entry,
            text_base,
            text_len,
            graph: FlowGraph { fn_entries, address_taken, nodes },
            cmp_operands,
            default_targets,
        })
    }
}

fn get<'v>(obj: &'v [(String, json::Value)], key: &str) -> Result<&'v json::Value, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("artifact is missing {key:?}"))
}

fn u32_array(value: &json::Value, what: &str) -> Result<Vec<u32>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("{what} must be an array"))?
        .iter()
        .map(|v| v.as_u32().ok_or_else(|| format!("{what} entries must be u32")))
        .collect()
}

/// A minimal recursive-descent JSON reader — just enough for the artifact
/// schema (objects, arrays, strings without escapes beyond `\"`/`\\`,
/// integers).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// An integer (the schema has no floats).
        Num(i64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::Num(n) => Some(n),
                _ => None,
            }
        }

        pub fn as_u32(&self) -> Option<u32> {
            self.as_i64().and_then(|n| u32::try_from(n).ok())
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&byte) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
            Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
            other => Err(format!("unexpected {other:?} at byte {pos}", pos = *pos)),
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = String::new();
        while let Some(&byte) = bytes.get(*pos) {
            *pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => match bytes.get(*pos) {
                    Some(&next @ (b'"' | b'\\' | b'/')) => {
                        out.push(next as char);
                        *pos += 1;
                    }
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                },
                _ => out.push(byte as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
        text.parse::<i64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::FlowNode;

    fn sample() -> AnalysisArtifact {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            0x1000,
            FlowNode {
                start: 0x1000,
                end: 0x1010,
                succs: vec![0x1010, 0x1020],
                call_target: None,
                indirect_call: true,
            },
        );
        nodes.insert(
            0x1010,
            FlowNode {
                start: 0x1010,
                end: 0x1020,
                succs: vec![],
                call_target: Some(0x2000),
                indirect_call: false,
            },
        );
        AnalysisArtifact {
            arch: Arch::Armv,
            entry: 0x1000,
            text_base: 0x1000,
            text_len: 0x8000,
            graph: FlowGraph {
                fn_entries: vec![0x1000, 0x2000],
                address_taken: vec![0x2000],
                nodes,
            },
            cmp_operands: vec![CmpOperand { value: 0x1234_5678, block: 0x1010 }],
            default_targets: vec![0x1014],
        }
    }

    #[test]
    fn json_round_trip() {
        let artifact = sample();
        let text = artifact.to_json();
        assert!(text.contains("embsan-analysis-v1"));
        let parsed = AnalysisArtifact::parse(&text).unwrap();
        assert_eq!(parsed, artifact);
    }

    #[test]
    fn version_is_checked() {
        let text = sample().to_json().replace("embsan-analysis-v1", "embsan-analysis-v0");
        let err = AnalysisArtifact::parse(&text).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(AnalysisArtifact::parse("").is_err());
        assert!(AnalysisArtifact::parse("{}").is_err());
        assert!(AnalysisArtifact::parse("[1, 2,").is_err());
        let trailing = format!("{} x", sample().to_json());
        assert!(AnalysisArtifact::parse(&trailing).is_err());
    }
}
