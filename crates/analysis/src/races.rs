//! Lockset-based static race candidates.
//!
//! The guest kernels synchronize with AMO spinlocks (`lock_acquire` spins
//! on `amoswp.w` with a non-zero source; `lock_release` swaps zero back
//! in). This pass recognizes those primitives *structurally* — no symbol
//! names needed, so it works on stripped images — then runs a must-hold
//! lock dataflow over each function's blocks: a call to an acquire function
//! generates "lock held" on the fall-through edge, a call to a release
//! function kills it, and the meet over predecessors is intersection
//! (must-hold, not may-hold).
//!
//! A shared static RAM address accessed on a path where the lock is not
//! provably held, with at least one write and more than one access site, is
//! a race candidate. The ranked candidate list feeds the KCSAN engine's
//! watchpoint prioritization (`KcsanEngine::set_priorities`), concentrating
//! the sampled stall windows on the addresses most likely to race.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use embsan_asm::image::{FirmwareImage, SymbolKind};
use embsan_emu::isa::{Insn, Reg};

use crate::cfg::Cfg;

/// A statically suspected data race on a shared address.
#[derive(Debug, Clone)]
pub struct RaceCandidate {
    /// The shared RAM address.
    pub addr: u32,
    /// Covering data symbol, when the image has symbols.
    pub symbol: Option<String>,
    /// Total resolved access sites.
    pub sites: usize,
    /// Sites that write.
    pub writes: usize,
    /// Sites on paths where no spinlock is provably held.
    pub unlocked_sites: usize,
    /// Writing sites with no spinlock held — the strongest signal.
    pub unlocked_writes: usize,
    /// Program counters of the unlocked sites (diagnostics).
    pub unlocked_pcs: Vec<u32>,
}

/// Partition of functions into spinlock acquire / release primitives, found
/// by their `amoswp.w` usage.
#[derive(Debug, Clone, Default)]
pub struct LockFunctions {
    /// Functions that swap a non-zero value into a lock word.
    pub acquire: BTreeSet<u32>,
    /// Functions that swap zero into a lock word.
    pub release: BTreeSet<u32>,
}

/// Classifies lock primitives by structure: an `amoswp.w` with `rs2 ≠ r0`
/// marks an acquire, `rs2 = r0` a release. A function doing both is
/// ambiguous and treated as neither.
pub fn lock_functions(cfg: &Cfg) -> LockFunctions {
    let mut lockfns = LockFunctions::default();
    for function in cfg.functions.values() {
        let mut swaps_nonzero = false;
        let mut swaps_zero = false;
        for &start in &function.blocks {
            for (_, insn) in &cfg.blocks[&start].insns {
                if let Insn::AmoSwpW { rs2, .. } = insn {
                    if *rs2 == Reg::R0 {
                        swaps_zero = true;
                    } else {
                        swaps_nonzero = true;
                    }
                }
            }
        }
        match (swaps_nonzero, swaps_zero) {
            (true, false) => {
                lockfns.acquire.insert(function.entry);
            }
            (false, true) => {
                lockfns.release.insert(function.entry);
            }
            _ => {}
        }
    }
    lockfns
}

/// Must-hold lock state at each block entry of every function: `true` when a
/// spinlock is provably held on every path reaching the block.
fn lock_states(cfg: &Cfg, lockfns: &LockFunctions) -> BTreeMap<u32, bool> {
    let mut states: BTreeMap<u32, bool> = BTreeMap::new();
    for function in cfg.functions.values() {
        states.insert(function.entry, false);
        let mut queue: VecDeque<u32> = function.blocks.iter().copied().collect();
        while let Some(start) = queue.pop_front() {
            let Some(&held_in) = states.get(&start) else { continue };
            let block = &cfg.blocks[&start];
            let held_out = match block.call_target {
                Some(target) if lockfns.acquire.contains(&target) => true,
                Some(target) if lockfns.release.contains(&target) => false,
                // An unknown (indirect) callee may release; stay conservative.
                _ if block.indirect_call => false,
                _ => held_in,
            };
            for &succ in &block.succs {
                if cfg.owner_of(succ) != function.entry {
                    continue;
                }
                let merged = match states.get(&succ) {
                    Some(&existing) => existing && held_out,
                    None => held_out,
                };
                if states.insert(succ, merged) != Some(merged) {
                    queue.push_back(succ);
                }
            }
        }
    }
    states
}

/// Runs the lockset pass over a recovered CFG.
///
/// Candidates are ranked by unlocked writes, then total sites — the order
/// in which KCSAN watchpoints should be prioritized.
pub fn race_candidates(cfg: &Cfg, image: &FirmwareImage) -> Vec<RaceCandidate> {
    let lockfns = lock_functions(cfg);
    let locked_at = lock_states(cfg, &lockfns);
    let ram = image.ram_base..image.ram_base.wrapping_add(image.ram_size);

    #[derive(Default)]
    struct AddrFacts {
        sites: usize,
        writes: usize,
        unlocked_sites: usize,
        unlocked_writes: usize,
        unlocked_pcs: Vec<u32>,
    }
    let mut by_addr: BTreeMap<u32, AddrFacts> = BTreeMap::new();
    for site in cfg.memory_sites_cached() {
        let Some(addr) = site.addr else { continue };
        if !ram.contains(&addr) || site.is_atomic {
            continue;
        }
        // Accesses inside the lock primitives themselves are the lock
        // protocol, not shared-data use.
        if lockfns.acquire.contains(&site.function) || lockfns.release.contains(&site.function) {
            continue;
        }
        let locked = locked_at.get(&site.block).copied().unwrap_or(false);
        let facts = by_addr.entry(addr).or_default();
        facts.sites += 1;
        if site.is_write {
            facts.writes += 1;
        }
        if !locked {
            facts.unlocked_sites += 1;
            facts.unlocked_pcs.push(site.pc);
            if site.is_write {
                facts.unlocked_writes += 1;
            }
        }
    }

    let symbol_for = |addr: u32| -> Option<String> {
        image
            .symbols
            .iter()
            .find(|s| {
                s.kind == SymbolKind::Object && addr >= s.addr && addr < s.addr + s.size.max(1)
            })
            .map(|s| s.name.clone())
    };

    let mut candidates: Vec<RaceCandidate> = by_addr
        .into_iter()
        .filter(|(_, f)| f.sites >= 2 && f.writes >= 1 && f.unlocked_sites >= 1)
        .map(|(addr, f)| RaceCandidate {
            addr,
            symbol: symbol_for(addr),
            sites: f.sites,
            writes: f.writes,
            unlocked_sites: f.unlocked_sites,
            unlocked_writes: f.unlocked_writes,
            unlocked_pcs: f.unlocked_pcs,
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.unlocked_writes
            .cmp(&a.unlocked_writes)
            .then(b.sites.cmp(&a.sites))
            .then(a.addr.cmp(&b.addr))
    });
    candidates
}

/// The ranked watchpoint-priority address list for the KCSAN engine.
pub fn watchpoint_priorities(cfg: &Cfg, image: &FirmwareImage) -> Vec<u32> {
    race_candidates(cfg, image).into_iter().map(|c| c.addr).collect()
}
