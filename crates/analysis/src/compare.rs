//! Comparison-operand harvesting (Icicle's CompCov idiom, statically).
//!
//! [`crate::cfg`]'s constant propagation already reconstructs multi-byte
//! constants from their `lui`+`ori`/`addi` materialization sequences. This
//! pass walks every reachable compare and conditional-branch instruction
//! and records the *reassembled* operand values those comparisons test
//! against, together with the guarding block — precisely the values a
//! magic-number gate demands, which `dictionary.rs`'s immediate scan can
//! only ever see as disjoint halves.
//!
//! The harvest is deterministic: operands come out sorted and deduplicated,
//! a pure function of the image.

use std::collections::BTreeSet;

use embsan_emu::isa::{Insn, Reg};

use crate::cfg::Cfg;

/// A harvested comparison operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CmpOperand {
    /// The constant one side of the comparison resolves to.
    pub value: u32,
    /// Start address of the guarding block (the block containing the
    /// compare/branch) — the natural direction target for this gate.
    pub block: u32,
}

/// The registers a compare-like instruction tests, or `None` if the
/// instruction is not a comparison.
fn compared_regs(insn: &Insn) -> Option<(Reg, Reg)> {
    match *insn {
        Insn::Beq { rs1, rs2, .. }
        | Insn::Bne { rs1, rs2, .. }
        | Insn::Blt { rs1, rs2, .. }
        | Insn::Bltu { rs1, rs2, .. }
        | Insn::Bge { rs1, rs2, .. }
        | Insn::Bgeu { rs1, rs2, .. }
        | Insn::Slt { rs1, rs2, .. }
        | Insn::Sltu { rs1, rs2, .. } => Some((rs1, rs2)),
        _ => None,
    }
}

/// Harvests every comparison operand that constant propagation can resolve,
/// sorted by `(value, block)` and deduplicated.
///
/// Zero is skipped (every `beq rX, r0` null check would otherwise flood the
/// harvest), as are values that fit a single immediate — the plain
/// dictionary already finds those; the harvest exists for the multi-piece
/// constants it cannot.
pub fn harvest(cfg: &Cfg) -> Vec<CmpOperand> {
    let mut out = BTreeSet::new();
    for function in cfg.functions.values() {
        let states = cfg.reg_states(function);
        for &start in &function.blocks {
            let Some(&in_state) = states.get(&start) else { continue };
            let mut state = in_state;
            for (_, insn) in &cfg.blocks[&start].insns {
                if let Some((rs1, rs2)) = compared_regs(insn) {
                    for reg in [rs1, rs2] {
                        if let Some(value) = state.get(reg) {
                            if wide_constant(value) {
                                out.insert(CmpOperand { value, block: start });
                            }
                        }
                    }
                }
                state.step(insn);
            }
        }
    }
    out.into_iter().collect()
}

/// Whether a constant needs more than one immediate to materialize (both a
/// non-zero upper-20 and a non-zero low-12 part) — the shape the immediate
/// scan misses.
fn wide_constant(value: u32) -> bool {
    value & 0xFFFF_F000 != 0 && value & 0xFFF != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_constant_filter() {
        assert!(!wide_constant(0)); // zero
        assert!(!wide_constant(0x41)); // single addi/ori immediate
        assert!(!wide_constant(0x4000_0000)); // single lui immediate
        assert!(wide_constant(0x1234_5678)); // needs lui+ori
        assert!(wide_constant(0x1000_0001));
    }

    #[test]
    fn compared_regs_covers_branches_and_set_less_than() {
        let b = Insn::Bne { rs1: Reg::A0, rs2: Reg::A2, offset: 8 };
        assert_eq!(compared_regs(&b), Some((Reg::A0, Reg::A2)));
        let s = Insn::Sltu { rd: Reg::A1, rs1: Reg::A0, rs2: Reg::A2 };
        assert_eq!(compared_regs(&s), Some((Reg::A0, Reg::A2)));
        assert_eq!(compared_regs(&Insn::Addi { rd: Reg::A0, rs1: Reg::A0, imm: 1 }), None);
    }
}
