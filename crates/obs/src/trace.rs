//! Ring-buffered structured event trace with a deterministic clock.
//!
//! A [`Tracer`] is a cheap cloneable handle shared by every subsystem of
//! one session (machine, translation cache, sanitizer runtime). The
//! default handle is disabled and costs one `Option` check per potential
//! event; [`Tracer::new`] arms it with a [`TraceConfig`] that selects the
//! event kinds to keep and the ring capacity.
//!
//! ## Clock semantics
//!
//! Events are tagged with the machine's **lifetime-retired** instruction
//! clock, updated once per scheduling quantum (quantum boundaries are
//! deterministic, so the tag is a pure function of guest execution).
//! Events inside one quantum share a clock value and are totally ordered
//! by the buffer-local sequence number. [`Tracer::drain_rebased`] subtracts
//! an iteration-start clock mark and restarts the sequence counter, which
//! makes per-iteration trace spans independent of which worker (or which
//! resumed process) executed the iteration.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::{Event, EventKind};

/// Which event kinds a [`Tracer`] records, and how many it retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity: once full, the oldest events are dropped (counted).
    pub capacity: usize,
    /// Translation-cache events: block-translate, generation hit/evict,
    /// flush. These depend on cache warmth and are therefore
    /// schedule-dependent under the parallel engine and across
    /// kill/resume replays.
    pub cache: bool,
    /// Probe-fire events (mem/call/ret/hypercall/block dispatch).
    pub probes: bool,
    /// Shadow-memory check events.
    pub checks: bool,
    /// Allocator-intercept events.
    pub allocs: bool,
    /// Sanitizer report events (recorded before deduplication).
    pub reports: bool,
    /// Engine events: watchdog trips, fault injections, epoch merges.
    pub engine: bool,
    /// Interrupt-delivery events: raises, acknowledgements, deferred-call
    /// scheduling. Execution-derived (devices are clocked on retired
    /// instructions), so these stay on in the deterministic preset.
    pub irq: bool,
}

impl TraceConfig {
    /// Default ring capacity (bounds golden-trace file size).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Records every event kind. Only reproducible for single-session
    /// sequential runs, where cache warmth is itself deterministic.
    pub fn full() -> TraceConfig {
        TraceConfig {
            capacity: TraceConfig::DEFAULT_CAPACITY,
            cache: true,
            probes: true,
            checks: true,
            allocs: true,
            reports: true,
            engine: true,
            irq: true,
        }
    }

    /// Records only execution-derived events — the subset that is a pure
    /// function of (snapshot state, program), independent of translation
    /// cache warmth. This is the preset used for parallel merged traces
    /// and supervised kill/resume traces, where the same iteration may run
    /// on differently warmed sessions.
    pub fn deterministic() -> TraceConfig {
        TraceConfig { cache: false, ..TraceConfig::full() }
    }

    fn wants(&self, kind: &EventKind) -> bool {
        match kind {
            EventKind::BlockTranslate { .. }
            | EventKind::CacheGenerationHit { .. }
            | EventKind::CacheGenerationEvict { .. }
            | EventKind::CacheFlush => self.cache,
            EventKind::ProbeFire { .. } => self.probes,
            EventKind::ShadowCheck { .. } => self.checks,
            EventKind::AllocIntercept { .. } => self.allocs,
            EventKind::Report { .. } => self.reports,
            EventKind::WatchdogTrip { .. }
            | EventKind::FaultInjected { .. }
            | EventKind::EpochMerge { .. }
            | EventKind::DegradedMode { .. }
            | EventKind::JobLifecycle { .. }
            | EventKind::RetryBackoff { .. } => self.engine,
            EventKind::IrqRaised { .. }
            | EventKind::IrqAcked { .. }
            | EventKind::DeferredCall { .. } => self.irq,
        }
    }
}

/// The ring buffer behind an enabled [`Tracer`].
#[derive(Debug)]
struct TraceBuffer {
    config: TraceConfig,
    events: VecDeque<Event>,
    clock: u64,
    seq: u64,
    dropped: u64,
}

/// Cheap cloneable handle to a (possibly absent) trace buffer.
///
/// Sessions are thread-affine, so the buffer is `Rc<RefCell<_>>`; parallel
/// workers each own an independent tracer and contribute per-iteration
/// spans that the scheduler merges in canonical iteration order.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuffer>>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op behind one branch.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer recording the kinds selected by `config`.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuffer {
                config,
                events: VecDeque::with_capacity(config.capacity.clamp(1, 1 << 12)),
                clock: 0,
                seq: 0,
                dropped: 0,
            }))),
        }
    }

    /// Whether this handle points at a live buffer.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The armed configuration, if enabled.
    pub fn config(&self) -> Option<TraceConfig> {
        self.inner.as_ref().map(|b| b.borrow().config)
    }

    /// Updates the instruction clock used to tag subsequent events.
    #[inline]
    pub fn set_clock(&self, clock: u64) {
        if let Some(buffer) = &self.inner {
            buffer.borrow_mut().clock = clock;
        }
    }

    /// The clock value events are currently tagged with.
    pub fn clock(&self) -> u64 {
        self.inner.as_ref().map_or(0, |b| b.borrow().clock)
    }

    /// Records `kind` if enabled and selected by the configuration.
    #[inline]
    pub fn record(&self, kind: EventKind) {
        if let Some(buffer) = &self.inner {
            let mut buffer = buffer.borrow_mut();
            if !buffer.config.wants(&kind) {
                return;
            }
            if buffer.events.len() >= buffer.config.capacity {
                buffer.events.pop_front();
                buffer.dropped += 1;
            }
            let event = Event { clock: buffer.clock, seq: buffer.seq, kind };
            buffer.seq += 1;
            buffer.events.push_back(event);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |b| b.borrow().events.len())
    }

    /// Whether the buffer is empty (or the tracer disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |b| b.borrow().dropped)
    }

    /// Drains all buffered events, restarting the sequence counter.
    pub fn drain(&self) -> Vec<Event> {
        self.drain_rebased(0)
    }

    /// Drains all buffered events, subtracting `clock_mark` from every
    /// clock tag (saturating) and restarting the sequence counter. Used to
    /// produce iteration-relative spans whose tags do not depend on how
    /// much the session executed before the iteration started.
    pub fn drain_rebased(&self, clock_mark: u64) -> Vec<Event> {
        let Some(buffer) = &self.inner else {
            return Vec::new();
        };
        let mut buffer = buffer.borrow_mut();
        buffer.seq = 0;
        buffer
            .events
            .drain(..)
            .map(|mut event| {
                event.clock = event.clock.saturating_sub(clock_mark);
                event
            })
            .collect()
    }
}

/// One iteration's worth of trace events, tagged with the iteration index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// Fuzz-iteration index (campaign-global, scheduler-independent).
    pub iter: u64,
    /// Iteration-relative events, in recording order.
    pub events: Vec<Event>,
}

/// A campaign trace assembled from per-iteration spans in canonical
/// iteration order (plus scheduler events such as epoch merges).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedTrace {
    /// Spans in canonical order.
    pub spans: Vec<TraceSpan>,
}

impl MergedTrace {
    /// Appends a span (callers are responsible for canonical ordering).
    pub fn push_span(&mut self, span: TraceSpan) {
        self.spans.push(span);
    }

    /// Total number of events across all spans.
    pub fn event_count(&self) -> usize {
        self.spans.iter().map(|s| s.events.len()).sum()
    }

    /// Serializes as `embsan-trace-v1` JSONL: a header line carrying
    /// `meta` key/value pairs, then one line per event with its owning
    /// iteration.
    pub fn to_jsonl(&self, meta: &[(&str, &str)]) -> String {
        let mut out = jsonl_header(meta);
        for span in &self.spans {
            for event in &span.events {
                out.push_str(&event.to_jsonl(Some(span.iter)));
                out.push('\n');
            }
        }
        out
    }
}

/// The `embsan-trace-v1` JSONL header line for `meta` key/value pairs.
pub fn jsonl_header(meta: &[(&str, &str)]) -> String {
    let mut out = String::from("{\"format\":\"embsan-trace-v1\"");
    for (key, value) in meta {
        out.push_str(",\"");
        out.push_str(key);
        out.push_str("\":\"");
        out.push_str(value);
        out.push('"');
    }
    out.push_str("}\n");
    out
}

/// Serializes a flat event stream as `embsan-trace-v1` JSONL.
pub fn trace_to_jsonl(events: &[Event], meta: &[(&str, &str)]) -> String {
    let mut out = jsonl_header(meta);
    for event in events {
        out.push_str(&event.to_jsonl(None));
        out.push('\n');
    }
    out
}

/// Serializes a flat event stream as a Chrome `trace_event` JSON document
/// (load via `chrome://tracing` or Perfetto for a flame view).
pub fn trace_to_chrome(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (index, event) in events.iter().enumerate() {
        out.push_str(&event.to_chrome(None));
        if index + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeKind;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        tracer.set_clock(5);
        tracer.record(EventKind::CacheFlush);
        assert!(!tracer.is_enabled());
        assert!(tracer.is_empty());
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn config_filters_kinds() {
        let tracer = Tracer::new(TraceConfig::deterministic());
        tracer.record(EventKind::BlockTranslate { pc: 4 });
        tracer.record(EventKind::ProbeFire { probe: ProbeKind::Mem, pc: 8 });
        let events = tracer.drain();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::ProbeFire { .. }));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let config = TraceConfig { capacity: 2, ..TraceConfig::full() };
        let tracer = Tracer::new(config);
        for pc in 0..5u32 {
            tracer.record(EventKind::BlockTranslate { pc });
        }
        assert_eq!(tracer.dropped(), 3);
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0].kind, EventKind::BlockTranslate { pc: 3 }));
    }

    #[test]
    fn drain_rebases_clock_and_restarts_seq() {
        let tracer = Tracer::new(TraceConfig::full());
        tracer.set_clock(1_000);
        tracer.record(EventKind::CacheFlush);
        let first = tracer.drain_rebased(1_000);
        assert_eq!((first[0].clock, first[0].seq), (0, 0));

        tracer.set_clock(2_500);
        tracer.record(EventKind::CacheFlush);
        let second = tracer.drain_rebased(2_000);
        assert_eq!((second[0].clock, second[0].seq), (500, 0), "seq restarts per drain");
    }

    #[test]
    fn clones_share_one_buffer() {
        let tracer = Tracer::new(TraceConfig::full());
        let clone = tracer.clone();
        clone.set_clock(7);
        clone.record(EventKind::CacheFlush);
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.drain()[0].clock, 7);
    }

    #[test]
    fn merged_trace_jsonl_has_header_and_iter_tags() {
        let mut trace = MergedTrace::default();
        trace.push_span(TraceSpan {
            iter: 4,
            events: vec![Event { clock: 1, seq: 0, kind: EventKind::CacheFlush }],
        });
        let jsonl = trace.to_jsonl(&[("firmware", "demo")]);
        let mut lines = jsonl.lines();
        assert_eq!(lines.next().unwrap(), "{\"format\":\"embsan-trace-v1\",\"firmware\":\"demo\"}");
        assert!(lines.next().unwrap().contains("\"iter\":4"));
    }
}
