//! Feature-gated scoped timers for the translate/execute/check hot paths.
//!
//! Without the `profile` cargo feature every type here is a unit struct
//! and every method is an empty inline function: the hot paths carry
//! **zero** profiling code. With the feature compiled in, a [`Profiler`]
//! handle can be attached but left disabled — each scope then costs one
//! `Option` + `bool` check — or enabled at runtime, accumulating per-phase
//! call counts and wall nanoseconds. The profile-overhead bench compares
//! a feature-on binary (profiler in its detached default state) against
//! a feature-off binary on the same workload to enforce the ≤2% budget.

/// A profiled hot-path phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Block translation (template expansion on cache miss).
    Translate,
    /// Guest execution quanta.
    Execute,
    /// Sanitizer shadow checks.
    Check,
}

impl Phase {
    /// Stable serialized label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Translate => "translate",
            Phase::Execute => "execute",
            Phase::Check => "check",
        }
    }

    #[cfg(feature = "profile")]
    const COUNT: usize = 3;

    #[cfg(feature = "profile")]
    fn index(self) -> usize {
        match self {
            Phase::Translate => 0,
            Phase::Execute => 1,
            Phase::Check => 2,
        }
    }
}

/// Accumulated timings for one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of scopes entered.
    pub calls: u64,
    /// Total wall nanoseconds inside the phase.
    pub nanos: u64,
}

/// A profiling report: per-phase call counts and wall time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Whether the timers were compiled in (`profile` feature).
    pub compiled: bool,
    /// Whether the profiler was enabled when the report was taken.
    pub enabled: bool,
    /// Per-phase stats, in [`Phase`] declaration order.
    pub phases: Vec<(&'static str, PhaseStats)>,
}

impl ProfileReport {
    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profiler: compiled={} enabled={}",
            if self.compiled { "yes" } else { "no" },
            if self.enabled { "yes" } else { "no" }
        );
        for (name, stats) in &self.phases {
            let _ = writeln!(
                out,
                "  {name:<10} calls={:<12} wall={:.3}ms",
                stats.calls,
                stats.nanos as f64 / 1e6
            );
        }
        out
    }
}

#[cfg(feature = "profile")]
mod imp {
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;
    use std::time::Instant;

    use super::{Phase, PhaseStats, ProfileReport};

    #[derive(Debug, Default)]
    struct ProfilerState {
        enabled: Cell<bool>,
        phases: RefCell<[PhaseStats; Phase::COUNT]>,
    }

    /// Cheap cloneable handle to shared per-phase accumulators.
    #[derive(Debug, Clone, Default)]
    pub struct Profiler {
        inner: Option<Rc<ProfilerState>>,
    }

    impl Profiler {
        /// A detached profiler (scopes are single-branch no-ops).
        pub fn disabled() -> Profiler {
            Profiler { inner: None }
        }

        /// An attached-but-disabled profiler; call
        /// [`Profiler::set_enabled`] to start timing.
        pub fn attached() -> Profiler {
            Profiler { inner: Some(Rc::new(ProfilerState::default())) }
        }

        /// Whether the timers were compiled in.
        pub fn compiled() -> bool {
            true
        }

        /// Whether this handle points at live accumulators.
        pub fn is_attached(&self) -> bool {
            self.inner.is_some()
        }

        /// Enables or disables timing at runtime.
        pub fn set_enabled(&self, enabled: bool) {
            if let Some(state) = &self.inner {
                state.enabled.set(enabled);
            }
        }

        /// Whether timing is currently active.
        ///
        /// Inlined so per-event hot paths can branch around scope
        /// construction entirely: a `ProfileScope` local forces drop glue
        /// on every exit edge of the enclosing function, which is
        /// measurable in functions called millions of times per second.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.inner.as_ref().is_some_and(|s| s.enabled.get())
        }

        /// Opens a scope; its wall time is charged to `phase` on drop.
        ///
        /// The disabled path (detached, or attached with timing off) is the
        /// one the ≤2% overhead budget covers; the armed path is split out
        /// as cold so the common case stays branch-plus-return.
        #[inline]
        pub fn scope(&self, phase: Phase) -> ProfileScope {
            if let Some(state) = &self.inner {
                if state.enabled.get() {
                    return Profiler::scope_armed(state, phase);
                }
            }
            ProfileScope { armed: None }
        }

        #[cold]
        fn scope_armed(state: &Rc<ProfilerState>, phase: Phase) -> ProfileScope {
            ProfileScope { armed: Some((Rc::clone(state), phase, Instant::now())) }
        }

        /// Snapshot of the accumulated stats.
        pub fn report(&self) -> ProfileReport {
            let mut report =
                ProfileReport { compiled: true, enabled: self.is_enabled(), phases: Vec::new() };
            if let Some(state) = &self.inner {
                let phases = state.phases.borrow();
                for phase in [Phase::Translate, Phase::Execute, Phase::Check] {
                    report.phases.push((phase.label(), phases[phase.index()]));
                }
            }
            report
        }
    }

    /// RAII guard charging elapsed wall time to a phase.
    pub struct ProfileScope {
        armed: Option<(Rc<ProfilerState>, Phase, Instant)>,
    }

    impl Drop for ProfileScope {
        #[inline]
        fn drop(&mut self) {
            if let Some((state, phase, start)) = self.armed.take() {
                charge(&state, phase, start);
            }
        }
    }

    #[cold]
    fn charge(state: &ProfilerState, phase: Phase, start: Instant) {
        let elapsed = start.elapsed().as_nanos() as u64;
        let mut phases = state.phases.borrow_mut();
        phases[phase.index()].calls += 1;
        phases[phase.index()].nanos += elapsed;
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    use super::{Phase, ProfileReport};

    /// Zero-sized stand-in: the `profile` feature is off, so every method
    /// compiles to nothing. Deliberately not `Copy`: handle distribution
    /// goes through `clone()` so both feature states share call sites
    /// without tripping `clippy::clone_on_copy`.
    #[derive(Debug, Clone, Default)]
    pub struct Profiler;

    impl Profiler {
        /// A detached profiler (no-op).
        pub fn disabled() -> Profiler {
            Profiler
        }

        /// An attached profiler (still a no-op without the feature).
        pub fn attached() -> Profiler {
            Profiler
        }

        /// Whether the timers were compiled in.
        pub fn compiled() -> bool {
            false
        }

        /// Always false without the feature.
        pub fn is_attached(&self) -> bool {
            false
        }

        /// Ignored without the feature.
        pub fn set_enabled(&self, _enabled: bool) {}

        /// Always false without the feature, so guarded hot-path scopes
        /// fold away completely.
        #[inline(always)]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// A no-op scope guard.
        #[inline(always)]
        pub fn scope(&self, _phase: Phase) -> ProfileScope {
            ProfileScope
        }

        /// An empty report.
        pub fn report(&self) -> ProfileReport {
            ProfileReport { compiled: false, enabled: false, phases: Vec::new() }
        }
    }

    /// Zero-sized scope guard.
    pub struct ProfileScope;
}

pub use imp::{ProfileScope, Profiler};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_profiler_is_inert() {
        let profiler = Profiler::disabled();
        assert!(!profiler.is_enabled());
        let _scope = profiler.scope(Phase::Execute);
        let report = profiler.report();
        assert_eq!(report.compiled, Profiler::compiled());
        assert!(!report.enabled);
    }

    #[cfg(feature = "profile")]
    #[test]
    fn enabled_profiler_accumulates() {
        let profiler = Profiler::attached();
        profiler.set_enabled(true);
        {
            let _scope = profiler.scope(Phase::Translate);
        }
        {
            let _scope = profiler.scope(Phase::Translate);
        }
        let report = profiler.report();
        assert!(report.compiled && report.enabled);
        assert_eq!(report.phases[0].0, "translate");
        assert_eq!(report.phases[0].1.calls, 2);
    }

    #[cfg(feature = "profile")]
    #[test]
    fn attached_but_disabled_records_nothing() {
        let profiler = Profiler::attached();
        {
            let _scope = profiler.scope(Phase::Check);
        }
        assert_eq!(profiler.report().phases[2].1.calls, 0);
    }
}
