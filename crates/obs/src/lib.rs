//! Observability layer for the EMBSAN stack: structured event tracing, a
//! typed metrics registry and feature-gated hot-path profilers.
//!
//! The layer is threaded through emu → core → fuzz → cli and is designed
//! around two constraints:
//!
//! - **zero cost when disabled** — every subsystem holds a [`Tracer`]
//!   handle that is a single `Option` check when tracing is off, and the
//!   [`profile`] timers compile to unit structs unless the `profile`
//!   cargo feature is enabled;
//! - **determinism** — events are tagged with the machine's
//!   lifetime-retired instruction clock plus a per-buffer sequence number,
//!   so a trace is a pure function of guest execution. The
//!   [`trace::TraceConfig::deterministic`] preset excludes the events that
//!   depend on translation-cache warmth (and therefore on worker schedule
//!   or kill/resume replay), which is what lets parallel campaigns merge
//!   per-iteration trace spans into a stream that is identical for every
//!   worker count.
//!
//! Exports: JSONL (`embsan-trace-v1`, one event per line) and Chrome
//! `trace_event` JSON for flame views; metric snapshots as
//! `embsan-metrics-v1` JSON with a deterministic/telemetry split.

pub mod event;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use event::{AllocOp, Event, EventKind, ProbeKind};
pub use metrics::{
    Histogram, MetricClass, MetricEntry, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use profile::{Phase, ProfileReport, Profiler};
pub use trace::{
    jsonl_header, trace_to_chrome, trace_to_jsonl, MergedTrace, TraceConfig, TraceSpan, Tracer,
};
