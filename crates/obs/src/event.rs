//! The structured event taxonomy and its serialized forms.
//!
//! Every event is plain data: primitives plus (for bug reports) a class
//! label. Payload fields are chosen so that an event stream recorded for a
//! single program execution is schedule-independent — addresses, sizes and
//! program counters, never host pointers, wall times or cache indices.

use std::fmt::Write as _;

/// Which probe family fired (mirrors [`ExecHook`] dispatch, where
/// `ExecHook` is the emulator's hook trait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// A load/store/atomic memory probe.
    Mem,
    /// A call-site probe.
    Call,
    /// A return-site probe.
    Ret,
    /// An EMBSAN-C hypercall probe.
    Hypercall,
    /// A translation-block entry probe (coverage source).
    Block,
}

impl ProbeKind {
    /// Stable serialized label.
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::Mem => "mem",
            ProbeKind::Call => "call",
            ProbeKind::Ret => "ret",
            ProbeKind::Hypercall => "hypercall",
            ProbeKind::Block => "block",
        }
    }
}

/// Which allocator operation the runtime intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOp {
    /// A heap allocation was registered (redzones poisoned).
    Alloc,
    /// A heap chunk was freed (quarantined).
    Free,
    /// A global object was registered.
    Global,
}

impl AllocOp {
    /// Stable serialized label.
    pub fn label(self) -> &'static str {
        match self {
            AllocOp::Alloc => "alloc",
            AllocOp::Free => "free",
            AllocOp::Global => "global",
        }
    }
}

/// One structured observability event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The translator compiled a new block at `pc`.
    BlockTranslate {
        /// Guest address of the block's first instruction.
        pc: u32,
    },
    /// A cache reconfigure found the requested template generation resident.
    CacheGenerationHit {
        /// Resident generations after the hit.
        generations: u32,
    },
    /// A cache reconfigure evicted the least-recently-used generation.
    CacheGenerationEvict {
        /// Resident generations after the eviction.
        generations: u32,
    },
    /// The whole translation cache was flushed.
    CacheFlush,
    /// A sanitizer probe fired and dispatched into the hook chain.
    ProbeFire {
        /// The probe family.
        probe: ProbeKind,
        /// Program counter of the probed instruction.
        pc: u32,
    },
    /// The runtime consulted shadow memory for a guest access.
    ShadowCheck {
        /// Guest address checked.
        addr: u32,
        /// Access size in bytes.
        size: u8,
        /// Whether the access was a write.
        write: bool,
    },
    /// The runtime intercepted an allocator event.
    AllocIntercept {
        /// The intercepted operation.
        op: AllocOp,
        /// Object base address.
        addr: u32,
        /// Object size in bytes.
        size: u32,
    },
    /// A sanitizer report was raised (recorded before deduplication).
    Report {
        /// Bug class label (e.g. `heap-out-of-bounds`).
        class: String,
        /// Faulting program counter.
        pc: u32,
    },
    /// The supervisor's watchdog classified a budget-exhausted run.
    WatchdogTrip {
        /// Hang classification label (`wfi-idle`, `responsive`, `live-lock`).
        class: &'static str,
    },
    /// The fault plan injected a hardware fault.
    FaultInjected {
        /// Fault kind label (e.g. `ram-bit-flip`).
        fault: &'static str,
    },
    /// The parallel scheduler merged an epoch into canonical state.
    EpochMerge {
        /// 1-based epoch index.
        epoch: u64,
        /// Executions merged so far.
        execs: u64,
        /// Canonical corpus size after the merge.
        corpus: u64,
        /// Findings retained after the merge.
        findings: u64,
        /// Non-zero coverage buckets after the merge.
        coverage: u64,
    },
    /// A component entered a degraded operating mode (e.g. the supervised
    /// path ignoring a multi-worker request, or the daemon shedding load).
    DegradedMode {
        /// The degraded component (`supervised`, `scheduler`, `queue`).
        component: &'static str,
        /// Human-readable description of the degradation.
        detail: String,
    },
    /// A daemon job crossed a lifecycle boundary.
    JobLifecycle {
        /// Daemon-assigned job id (submission order).
        job: u64,
        /// Lifecycle phase label (`queued`, `running`, `parked`,
        /// `completed`, `quarantined`).
        phase: &'static str,
    },
    /// A transient IO failure triggered a bounded retry with backoff.
    RetryBackoff {
        /// The retried operation (`journal-append`, `socket-accept`).
        op: &'static str,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// A device latched pending interrupt line(s) onto the shared machine
    /// interrupt (raise side of the IRQ lifecycle).
    IrqRaised {
        /// Raising device label (`gpio`, `alarm`, `timer`).
        source: &'static str,
        /// Pending bits newly latched.
        lines: u32,
    },
    /// The guest acknowledged pending interrupt line(s) (write-1-to-clear).
    IrqAcked {
        /// Acknowledged device label.
        source: &'static str,
        /// Pending bits cleared.
        lines: u32,
    },
    /// The guest scheduled a deferred call (software interrupt a fixed
    /// number of retired instructions in the future).
    DeferredCall {
        /// Delay in retired instructions.
        delay: u32,
    },
}

impl EventKind {
    /// Stable serialized event name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BlockTranslate { .. } => "block-translate",
            EventKind::CacheGenerationHit { .. } => "cache-generation-hit",
            EventKind::CacheGenerationEvict { .. } => "cache-generation-evict",
            EventKind::CacheFlush => "cache-flush",
            EventKind::ProbeFire { .. } => "probe-fire",
            EventKind::ShadowCheck { .. } => "shadow-check",
            EventKind::AllocIntercept { .. } => "alloc-intercept",
            EventKind::Report { .. } => "report",
            EventKind::WatchdogTrip { .. } => "watchdog-trip",
            EventKind::FaultInjected { .. } => "fault-injected",
            EventKind::EpochMerge { .. } => "epoch-merge",
            EventKind::DegradedMode { .. } => "degraded-mode",
            EventKind::JobLifecycle { .. } => "job-lifecycle",
            EventKind::RetryBackoff { .. } => "retry-backoff",
            EventKind::IrqRaised { .. } => "irq-raised",
            EventKind::IrqAcked { .. } => "irq-acked",
            EventKind::DeferredCall { .. } => "deferred-call",
        }
    }

    /// Appends the kind-specific JSON fields (leading comma included).
    fn write_args(&self, out: &mut String) {
        match self {
            EventKind::BlockTranslate { pc } => {
                let _ = write!(out, ",\"pc\":\"{pc:#010x}\"");
            }
            EventKind::CacheGenerationHit { generations }
            | EventKind::CacheGenerationEvict { generations } => {
                let _ = write!(out, ",\"generations\":{generations}");
            }
            EventKind::CacheFlush => {}
            EventKind::ProbeFire { probe, pc } => {
                let _ = write!(out, ",\"probe\":\"{}\",\"pc\":\"{pc:#010x}\"", probe.label());
            }
            EventKind::ShadowCheck { addr, size, write } => {
                let _ = write!(out, ",\"addr\":\"{addr:#010x}\",\"size\":{size},\"write\":{write}");
            }
            EventKind::AllocIntercept { op, addr, size } => {
                let _ = write!(
                    out,
                    ",\"op\":\"{}\",\"addr\":\"{addr:#010x}\",\"size\":{size}",
                    op.label()
                );
            }
            EventKind::Report { class, pc } => {
                let _ = write!(out, ",\"class\":\"{class}\",\"pc\":\"{pc:#010x}\"");
            }
            EventKind::WatchdogTrip { class } => {
                let _ = write!(out, ",\"class\":\"{class}\"");
            }
            EventKind::FaultInjected { fault } => {
                let _ = write!(out, ",\"fault\":\"{fault}\"");
            }
            EventKind::EpochMerge { epoch, execs, corpus, findings, coverage } => {
                let _ = write!(
                    out,
                    ",\"epoch\":{epoch},\"execs\":{execs},\"corpus\":{corpus},\
                     \"findings\":{findings},\"coverage\":{coverage}"
                );
            }
            EventKind::DegradedMode { component, detail } => {
                let _ = write!(out, ",\"component\":\"{component}\",\"detail\":\"{detail}\"");
            }
            EventKind::JobLifecycle { job, phase } => {
                let _ = write!(out, ",\"job\":{job},\"phase\":\"{phase}\"");
            }
            EventKind::RetryBackoff { op, attempt } => {
                let _ = write!(out, ",\"op\":\"{op}\",\"attempt\":{attempt}");
            }
            EventKind::IrqRaised { source, lines } | EventKind::IrqAcked { source, lines } => {
                let _ = write!(out, ",\"source\":\"{source}\",\"lines\":{lines}");
            }
            EventKind::DeferredCall { delay } => {
                let _ = write!(out, ",\"delay\":{delay}");
            }
        }
    }
}

/// One recorded event: a kind tagged with the lifetime-retired instruction
/// clock (quantum-start granularity) and a buffer-local sequence number
/// that totally orders events sharing a clock value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Lifetime-retired instruction clock at the enclosing quantum's start
    /// (rebased to the iteration start for per-iteration trace spans).
    pub clock: u64,
    /// Sequence number within the trace buffer (resets on drain).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// Serializes the event as one `embsan-trace-v1` JSONL line (no
    /// trailing newline). `iter` adds the owning fuzz-iteration field used
    /// by merged campaign traces.
    pub fn to_jsonl(&self, iter: Option<u64>) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"clock\":{},\"seq\":{}", self.clock, self.seq);
        if let Some(iter) = iter {
            let _ = write!(out, ",\"iter\":{iter}");
        }
        let _ = write!(out, ",\"event\":\"{}\"", self.kind.name());
        self.kind.write_args(&mut out);
        out.push('}');
        out
    }

    /// Serializes the event as a Chrome `trace_event` instant record. The
    /// instruction clock maps onto the microsecond timestamp axis so flame
    /// views order events exactly as the guest retired them.
    pub fn to_chrome(&self, iter: Option<u64>) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
            self.kind.name(),
            iter.unwrap_or(0),
            self.clock,
        );
        let mut args = String::new();
        let _ = write!(args, "{{\"seq\":{}", self.seq);
        self.kind.write_args(&mut args);
        args.push('}');
        let _ = write!(out, ",\"args\":{args}}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_shape_is_stable() {
        let event = Event {
            clock: 42,
            seq: 7,
            kind: EventKind::ProbeFire { probe: ProbeKind::Mem, pc: 0x1000_0004 },
        };
        assert_eq!(
            event.to_jsonl(None),
            "{\"clock\":42,\"seq\":7,\"event\":\"probe-fire\",\
             \"probe\":\"mem\",\"pc\":\"0x10000004\"}"
        );
        assert_eq!(
            event.to_jsonl(Some(3)),
            "{\"clock\":42,\"seq\":7,\"iter\":3,\"event\":\"probe-fire\",\
             \"probe\":\"mem\",\"pc\":\"0x10000004\"}"
        );
    }

    #[test]
    fn chrome_lines_are_valid_instants() {
        let event = Event { clock: 9, seq: 0, kind: EventKind::CacheFlush };
        let line = event.to_chrome(Some(2));
        assert!(line.contains("\"ph\":\"i\""));
        assert!(line.contains("\"ts\":9"));
        assert!(line.contains("\"tid\":2"));
    }
}
