//! Typed metrics registry with deterministic snapshots.
//!
//! Subsystems keep their existing cheap counters (`CacheStats`,
//! `InjectionStats`, `HealthCounters`, fuzzer stats); adapters copy them
//! into a [`MetricsRegistry`] keyed by `(subsystem, name)` and snapshot it
//! into a sorted, stable [`MetricsSnapshot`].
//!
//! Every entry carries a [`MetricClass`]:
//!
//! - [`MetricClass::Deterministic`] — a pure function of (firmware, seed,
//!   iteration count); identical across repeated runs *and* across worker
//!   counts. This subset is what `--metrics-out` serializes, which is what
//!   makes the emitted JSON byte-identical for every worker count.
//! - [`MetricClass::Telemetry`] — scheduling- or wall-clock-dependent
//!   (per-worker cache warmth, wall times, worker counts); surfaced on the
//!   console and via [`MetricsSnapshot::to_json`] with telemetry included.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Determinism class of a metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Identical across repeated runs at a fixed seed, for every worker
    /// count.
    Deterministic,
    /// Depends on scheduling, wall time or configuration shape.
    Telemetry,
}

impl MetricClass {
    /// Stable serialized label.
    pub fn label(self) -> &'static str {
        match self {
            MetricClass::Deterministic => "deterministic",
            MetricClass::Telemetry => "telemetry",
        }
    }
}

/// A fixed-shape log2-bucketed histogram (bucket `i` counts observations
/// `v` with `floor(log2(v)) == i`; bucket 0 also counts `v == 0`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub total: u64,
    /// Log2 buckets (`buckets[i]` counts values in `[2^i, 2^(i+1))`).
    pub buckets: [u64; 32],
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.total += value;
        let bucket = if value == 0 { 0 } else { 63 - u64::leading_zeros(value) as usize };
        self.buckets[bucket.min(31)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.total += other.total;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// A typed metric value.
// Histograms are 272 bytes against the counters' 8; metrics live in a
// BTreeMap, not a hot array, so boxing would cost more than it saves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically accumulated count.
    Counter(u64),
    /// A point-in-time signed level.
    Gauge(i64),
    /// A distribution.
    Histogram(Histogram),
}

impl MetricValue {
    /// Stable serialized kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One snapshot entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Owning subsystem (e.g. `translator`, `scheduler`, `supervisor`).
    pub subsystem: String,
    /// Metric name within the subsystem.
    pub name: String,
    /// Determinism class.
    pub class: MetricClass,
    /// The value.
    pub value: MetricValue,
}

/// A registry of typed metrics keyed by `(subsystem, name)`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    entries: BTreeMap<(String, String), (MetricClass, MetricValue)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Sets a counter.
    pub fn counter(&mut self, subsystem: &str, name: &str, class: MetricClass, value: u64) {
        self.set(subsystem, name, class, MetricValue::Counter(value));
    }

    /// Sets a gauge.
    pub fn gauge(&mut self, subsystem: &str, name: &str, class: MetricClass, value: i64) {
        self.set(subsystem, name, class, MetricValue::Gauge(value));
    }

    /// Sets a histogram.
    pub fn histogram(&mut self, subsystem: &str, name: &str, class: MetricClass, value: Histogram) {
        self.set(subsystem, name, class, MetricValue::Histogram(value));
    }

    /// Sets an arbitrary value, replacing any previous entry for the key.
    pub fn set(&mut self, subsystem: &str, name: &str, class: MetricClass, value: MetricValue) {
        self.entries.insert((subsystem.to_string(), name.to_string()), (class, value));
    }

    /// Snapshot in canonical `(subsystem, name)` order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|((subsystem, name), (class, value))| MetricEntry {
                    subsystem: subsystem.clone(),
                    name: name.clone(),
                    class: *class,
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

/// A sorted, stable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Entries sorted by `(subsystem, name)`.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// The subset of entries that are deterministic.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| e.class == MetricClass::Deterministic)
                .cloned()
                .collect(),
        }
    }

    /// Looks up a counter/gauge value as `i64`.
    pub fn value(&self, subsystem: &str, name: &str) -> Option<i64> {
        self.entries.iter().find(|e| e.subsystem == subsystem && e.name == name).and_then(|e| {
            match &e.value {
                MetricValue::Counter(v) => i64::try_from(*v).ok(),
                MetricValue::Gauge(v) => Some(*v),
                MetricValue::Histogram(_) => None,
            }
        })
    }

    /// Serializes as `embsan-metrics-v1` JSON. With
    /// `include_telemetry = false` only [`MetricClass::Deterministic`]
    /// entries are emitted, making the output byte-identical across
    /// repeated runs at a fixed seed for every worker count.
    pub fn to_json(&self, include_telemetry: bool) -> String {
        let mut out = String::from("{\n  \"format\": \"embsan-metrics-v1\",\n  \"metrics\": [\n");
        let emitted: Vec<&MetricEntry> = self
            .entries
            .iter()
            .filter(|e| include_telemetry || e.class == MetricClass::Deterministic)
            .collect();
        for (index, entry) in emitted.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"subsystem\": \"{}\", \"name\": \"{}\", \"class\": \"{}\", \
                 \"kind\": \"{}\"",
                entry.subsystem,
                entry.name,
                entry.class.label(),
                entry.value.kind(),
            );
            match &entry.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ", \"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, ", \"value\": {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(out, ", \"count\": {}, \"total\": {}", h.count, h.total);
                    // Trailing zero buckets are elided so the shape stays
                    // readable; the bucket index is implicit (log2).
                    let last = h.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
                    out.push_str(", \"buckets\": [");
                    for (i, bucket) in h.buckets[..last].iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{bucket}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
            if index + 1 != emitted.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.total, 1034);
        assert_eq!(h.buckets[0], 2, "0 and 1 share bucket 0");
        assert_eq!(h.buckets[1], 2, "2 and 3");
        assert_eq!(h.buckets[2], 1, "4");
        assert_eq!(h.buckets[10], 1, "1024");
    }

    #[test]
    fn snapshot_is_sorted_and_filterable() {
        let mut reg = MetricsRegistry::new();
        reg.counter("zeta", "b", MetricClass::Telemetry, 9);
        reg.counter("alpha", "a", MetricClass::Deterministic, 1);
        reg.gauge("alpha", "z", MetricClass::Deterministic, -3);
        let snap = reg.snapshot();
        assert_eq!(snap.entries[0].subsystem, "alpha");
        assert_eq!(snap.deterministic().entries.len(), 2);
        assert_eq!(snap.value("alpha", "z"), Some(-3));
        assert_eq!(snap.value("zeta", "b"), Some(9));
    }

    #[test]
    fn json_excludes_telemetry_by_request() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a", "det", MetricClass::Deterministic, 1);
        reg.counter("a", "tel", MetricClass::Telemetry, 2);
        let snap = reg.snapshot();
        let deterministic = snap.to_json(false);
        assert!(deterministic.contains("\"det\""));
        assert!(!deterministic.contains("\"tel\""));
        assert!(snap.to_json(true).contains("\"tel\""));
        assert!(deterministic.starts_with("{\n  \"format\": \"embsan-metrics-v1\""));
    }

    #[test]
    fn histogram_json_elides_trailing_zero_buckets() {
        let mut reg = MetricsRegistry::new();
        let mut h = Histogram::new();
        h.observe(5);
        reg.histogram("s", "h", MetricClass::Deterministic, h);
        let json = reg.snapshot().to_json(false);
        assert!(json.contains("\"buckets\": [0, 0, 1]"), "{json}");
    }
}
