//! The EMBSAN in-house Domain-Specific Language.
//!
//! §3.1 of the paper: the Sanitizer Common Function Distiller converts the
//! interception interfaces and logic of reference sanitizers (KASAN, KCSAN)
//! into "an in-house Domain-Specific Language"; the Platform Configuration
//! Prober likewise emits platform details and initialization routines in the
//! DSL, and the Common Sanitizer Runtime consumes all three.
//!
//! This crate defines that language: three document kinds —
//!
//! - `sanitizer <name> { … }`: interception points and resource requirements
//!   ([`ast::SanitizerSpec`]),
//! - `platform <name> { … }`: architecture, memory layout, hypercall
//!   conventions and function hooks ([`ast::PlatformSpec`]),
//! - `init { … }`: the boot-time sanitizer state routine
//!   ([`ast::InitProgram`]),
//!
//! with a lexer/parser ([`parse`]), a pretty-printer (every AST type
//! implements [`std::fmt::Display`] and round-trips through the parser), and
//! the specification-merging rules of §3.1 ([`merge::merge`]).
//!
//! # Example
//!
//! ```
//! let doc = r#"
//! sanitizer kasan {
//!     resource shadow { granule: 8; }
//!     intercept insn load (addr: ptr, size: usize);
//!     intercept call alloc (addr: ptr, size: usize);
//! }
//! "#;
//! let items = embsan_dsl::parse(doc)?;
//! assert_eq!(items.len(), 1);
//! # Ok::<(), embsan_dsl::ParseError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod merge;
pub mod parser;

pub use ast::{
    ArgSpec, ArgType, FuncHook, FuncRole, InitProgram, InitStep, InterceptPoint, Item,
    PlatformSpec, PointKind, PoisonKind, ReadyPoint, SanitizerSpec,
};
pub use merge::merge;
pub use parser::{parse, ParseError};
