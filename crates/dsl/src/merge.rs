//! Specification merging — the §3.1 combination rules.
//!
//! > "First, the resulting set of interception points is taken over a union
//! > of the individual sanitizer's set. Then, for each interception point,
//! > the interface's arguments are also taken as a union of the individual
//! > sanitizer's arguments. For arguments that share target data but are not
//! > exactly the same, we take the largest possible union of the data and
//! > combine them into one argument, and add the corresponding annotations
//! > identifying which source APIs the segments belong to."

use std::collections::BTreeMap;

use crate::ast::{ArgSpec, InterceptPoint, PointKind, SanitizerSpec};

/// Merges several sanitizer specifications into one, per the §3.1 rules.
///
/// Interception points are united by `(kind, name)`; arguments by name, with
/// type widening and per-source annotations. Resource groups are united; a
/// parameter requested by several sanitizers takes the *maximum* value (the
/// most demanding requirement wins).
///
/// The merged specification's name is the source names joined by `_`.
pub fn merge(specs: &[SanitizerSpec]) -> SanitizerSpec {
    let mut merged = SanitizerSpec {
        name: specs.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join("_"),
        ..SanitizerSpec::default()
    };

    // Resources: union of groups; per-parameter maximum.
    for spec in specs {
        for (group, params) in &spec.resources {
            let out = merged.resources.entry(group.clone()).or_default();
            for (key, value) in params {
                out.entry(key.clone()).and_modify(|v| *v = (*v).max(*value)).or_insert(*value);
            }
        }
    }

    // Interception points: union keyed by (kind, name), preserving first-seen
    // order; argument union with widening and annotations.
    let mut index: BTreeMap<(PointKind, String), usize> = BTreeMap::new();
    for spec in specs {
        for point in &spec.points {
            let key = (point.kind, point.name.clone());
            let at = *index.entry(key).or_insert_with(|| {
                merged.points.push(InterceptPoint {
                    kind: point.kind,
                    name: point.name.clone(),
                    args: Vec::new(),
                });
                merged.points.len() - 1
            });
            let out_args = &mut merged.points[at].args;
            for arg in &point.args {
                match out_args.iter_mut().find(|a| a.name == arg.name) {
                    Some(existing) => {
                        existing.ty = existing.ty.widest(arg.ty);
                        if !existing.sources.contains(&spec.name) {
                            existing.sources.push(spec.name.clone());
                        }
                    }
                    None => out_args.push(ArgSpec {
                        name: arg.name.clone(),
                        ty: arg.ty,
                        sources: vec![spec.name.clone()],
                    }),
                }
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ArgType;
    use crate::parser::parse;
    use crate::Item;

    fn spec(doc: &str) -> SanitizerSpec {
        match parse(doc).unwrap().remove(0) {
            Item::Sanitizer(spec) => spec,
            _ => panic!("expected sanitizer"),
        }
    }

    fn kasan() -> SanitizerSpec {
        spec(
            "sanitizer kasan {
                resource shadow { granule: 8; }
                resource quarantine { bytes: 65536; }
                intercept insn load (addr: ptr, size: u8);
                intercept insn store (addr: ptr, size: u8);
                intercept call alloc (addr: ptr, size: usize);
                intercept call free (addr: ptr);
                intercept event ready ();
            }",
        )
    }

    fn kcsan() -> SanitizerSpec {
        spec(
            "sanitizer kcsan {
                resource shadow { granule: 1; }
                resource watchpoints { slots: 8; window: 64; }
                intercept insn load (addr: ptr, size: usize, cpu: u32);
                intercept insn store (addr: ptr, size: usize, value: u32, cpu: u32);
                intercept insn atomic (addr: ptr, size: usize, cpu: u32);
            }",
        )
    }

    #[test]
    fn points_are_united() {
        let merged = merge(&[kasan(), kcsan()]);
        assert_eq!(merged.name, "kasan_kcsan");
        // kasan: load store alloc free ready; kcsan adds atomic.
        assert_eq!(merged.points.len(), 6);
        assert!(merged.point(PointKind::Insn, "atomic").is_some());
        assert!(merged.point(PointKind::Call, "alloc").is_some());
    }

    #[test]
    fn argument_union_with_widening_and_annotations() {
        let merged = merge(&[kasan(), kcsan()]);
        let load = merged.point(PointKind::Insn, "load").unwrap();
        assert_eq!(load.args.len(), 3);
        let size = load.args.iter().find(|a| a.name == "size").unwrap();
        // kasan said u8, kcsan said usize → widest wins.
        assert_eq!(size.ty, ArgType::Usize);
        assert_eq!(size.sources, vec!["kasan", "kcsan"]);
        let cpu = load.args.iter().find(|a| a.name == "cpu").unwrap();
        assert_eq!(cpu.sources, vec!["kcsan"]);
        let value = merged
            .point(PointKind::Insn, "store")
            .unwrap()
            .args
            .iter()
            .find(|a| a.name == "value")
            .unwrap();
        assert_eq!(value.sources, vec!["kcsan"]);
    }

    #[test]
    fn resources_take_the_most_demanding_value() {
        let merged = merge(&[kasan(), kcsan()]);
        assert_eq!(merged.resource("shadow", "granule"), Some(8));
        assert_eq!(merged.resource("quarantine", "bytes"), Some(65536));
        assert_eq!(merged.resource("watchpoints", "slots"), Some(8));
    }

    #[test]
    fn merge_is_idempotent_for_one_spec() {
        let once = merge(&[kasan()]);
        assert_eq!(once.points.len(), kasan().points.len());
        // Every arg is annotated with the single source.
        for point in &once.points {
            for arg in &point.args {
                assert_eq!(arg.sources, vec!["kasan"]);
            }
        }
    }

    #[test]
    fn merge_point_set_is_order_insensitive() {
        let ab = merge(&[kasan(), kcsan()]);
        let ba = merge(&[kcsan(), kasan()]);
        let mut ab_keys: Vec<_> = ab.points.iter().map(|p| (p.kind, p.name.clone())).collect();
        let mut ba_keys: Vec<_> = ba.points.iter().map(|p| (p.kind, p.name.clone())).collect();
        ab_keys.sort();
        ba_keys.sort();
        assert_eq!(ab_keys, ba_keys);
        assert_eq!(ab.resources, ba.resources);
    }

    #[test]
    fn merged_spec_prints_and_reparses() {
        let merged = merge(&[kasan(), kcsan()]);
        let printed = merged.to_string();
        let reparsed = spec(&printed);
        assert_eq!(reparsed, merged);
    }
}
