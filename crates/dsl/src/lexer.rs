//! Tokenizer for the EMBSAN DSL.

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal or `0x` hexadecimal).
    Int(u64),
    /// Double-quoted string literal.
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `..`
    DotDot,
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::Colon => write!(f, "`:`"),
            Token::Semi => write!(f, "`;`"),
            Token::Comma => write!(f, "`,`"),
            Token::Eq => write!(f, "`=`"),
            Token::DotDot => write!(f, "`..`"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// A tokenization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes DSL source. Comments run from `#` to end of line.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                chars.next();
                out.push(Spanned { token: Token::LBrace, line });
            }
            '}' => {
                chars.next();
                out.push(Spanned { token: Token::RBrace, line });
            }
            '(' => {
                chars.next();
                out.push(Spanned { token: Token::LParen, line });
            }
            ')' => {
                chars.next();
                out.push(Spanned { token: Token::RParen, line });
            }
            ':' => {
                chars.next();
                out.push(Spanned { token: Token::Colon, line });
            }
            ';' => {
                chars.next();
                out.push(Spanned { token: Token::Semi, line });
            }
            ',' => {
                chars.next();
                out.push(Spanned { token: Token::Comma, line });
            }
            '=' => {
                chars.next();
                out.push(Spanned { token: Token::Eq, line });
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    out.push(Spanned { token: Token::DotDot, line });
                } else {
                    return Err(LexError { line, message: "expected `..`".to_string() });
                }
            }
            '"' => {
                chars.next();
                let mut text = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                line,
                                message: "unterminated string".to_string(),
                            })
                        }
                        Some(c) => text.push(c),
                    }
                }
                out.push(Spanned { token: Token::Str(text), line });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = text.replace('_', "");
                let value = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse()
                }
                .map_err(|_| LexError { line, message: format!("bad integer `{text}`") })?;
                out.push(Spanned { token: Token::Int(value), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned { token: Token::Ident(text), line });
            }
            other => {
                return Err(LexError { line, message: format!("unexpected character `{other}`") })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_all_token_kinds() {
        let tokens = lex("foo { 0x10 .. 42 } (a: \"s\"); x = 1, # comment\ny").unwrap();
        let kinds: Vec<Token> = tokens.into_iter().map(|t| t.token).collect();
        assert_eq!(
            kinds,
            vec![
                Token::Ident("foo".into()),
                Token::LBrace,
                Token::Int(16),
                Token::DotDot,
                Token::Int(42),
                Token::RBrace,
                Token::LParen,
                Token::Ident("a".into()),
                Token::Colon,
                Token::Str("s".into()),
                Token::RParen,
                Token::Semi,
                Token::Ident("x".into()),
                Token::Eq,
                Token::Int(1),
                Token::Comma,
                Token::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = lex("a\nb\n\nc").unwrap();
        let lines: Vec<usize> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn underscores_in_numbers() {
        let tokens = lex("0x0010_0000 1_000").unwrap();
        assert_eq!(tokens[0].token, Token::Int(0x10_0000));
        assert_eq!(tokens[1].token, Token::Int(1000));
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a . b").is_err());
        assert!(lex("@").is_err());
    }
}
