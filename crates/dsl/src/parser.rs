//! Recursive-descent parser for the EMBSAN DSL.

use crate::ast::{
    ArgSpec, ArgType, FuncHook, FuncRole, InitProgram, InitStep, InterceptPoint, Item,
    PlatformSpec, PointKind, PoisonKind, ReadyPoint, SanitizerSpec,
};
use crate::lexer::{lex, LexError, Spanned, Token};

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 for end-of-input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError { line: err.line, message: err.message }
    }
}

/// Parses a DSL document into top-level items.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its line number.
pub fn parse(source: &str) -> Result<Vec<Item>, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !parser.at_end() {
        items.push(parser.item()?);
    }
    Ok(items)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens.get(self.pos).map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let token = self
            .tokens
            .get(self.pos)
            .ok_or(ParseError { line: 0, message: "unexpected end of input".into() })?
            .token
            .clone();
        self.pos += 1;
        Ok(token)
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        let line = self.line();
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(ParseError { line, message: format!("expected {want}, found {got}") })
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next()? {
            Token::Ident(name) => Ok(name),
            other => {
                Err(ParseError { line, message: format!("expected identifier, found {other}") })
            }
        }
    }

    fn keyword(&mut self, want: &str) -> Result<(), ParseError> {
        let line = self.line();
        let name = self.ident()?;
        if name == want {
            Ok(())
        } else {
            Err(ParseError { line, message: format!("expected `{want}`, found `{name}`") })
        }
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        let line = self.line();
        match self.next()? {
            Token::Int(value) => Ok(value),
            other => Err(ParseError { line, message: format!("expected integer, found {other}") }),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        let line = self.line();
        match self.next()? {
            Token::Str(value) => Ok(value),
            other => Err(ParseError { line, message: format!("expected string, found {other}") }),
        }
    }

    fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn range(&mut self) -> Result<(u64, u64), ParseError> {
        let start = self.int()?;
        self.expect(&Token::DotDot)?;
        let end = self.int()?;
        Ok((start, end))
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        let line = self.line();
        let keyword = self.ident()?;
        match keyword.as_str() {
            "sanitizer" => self.sanitizer().map(Item::Sanitizer),
            "platform" => self.platform().map(Item::Platform),
            "init" => self.init().map(Item::Init),
            other => Err(ParseError {
                line,
                message: format!("expected `sanitizer`, `platform` or `init`, found `{other}`"),
            }),
        }
    }

    fn sanitizer(&mut self) -> Result<SanitizerSpec, ParseError> {
        let mut spec = SanitizerSpec { name: self.ident()?, ..SanitizerSpec::default() };
        self.expect(&Token::LBrace)?;
        while !self.eat(&Token::RBrace) {
            let line = self.line();
            match self.ident()?.as_str() {
                "resource" => {
                    let group = self.ident()?;
                    self.expect(&Token::LBrace)?;
                    let params = spec.resources.entry(group).or_default();
                    while !self.eat(&Token::RBrace) {
                        let key = self.ident()?;
                        self.expect(&Token::Colon)?;
                        let value = self.int()?;
                        self.expect(&Token::Semi)?;
                        params.insert(key, value);
                    }
                }
                "intercept" => {
                    let kind_name = self.ident()?;
                    let kind = PointKind::parse(&kind_name).ok_or(ParseError {
                        line,
                        message: format!("unknown interception kind `{kind_name}`"),
                    })?;
                    let name = self.ident()?;
                    let mut args = Vec::new();
                    self.expect(&Token::LParen)?;
                    while !self.eat(&Token::RParen) {
                        if !args.is_empty() {
                            self.expect(&Token::Comma)?;
                        }
                        let arg_name = self.ident()?;
                        self.expect(&Token::Colon)?;
                        let ty_line = self.line();
                        let ty_name = self.ident()?;
                        let ty = ArgType::parse(&ty_name).ok_or(ParseError {
                            line: ty_line,
                            message: format!("unknown argument type `{ty_name}`"),
                        })?;
                        let mut sources = Vec::new();
                        if self.peek() == Some(&Token::Ident("from".into())) {
                            self.pos += 1;
                            while let Some(Token::Ident(src)) = self.peek() {
                                sources.push(src.clone());
                                self.pos += 1;
                            }
                        }
                        args.push(ArgSpec { name: arg_name, ty, sources });
                    }
                    self.expect(&Token::Semi)?;
                    spec.points.push(InterceptPoint { kind, name, args });
                }
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unknown sanitizer item `{other}`"),
                    })
                }
            }
        }
        Ok(spec)
    }

    fn platform(&mut self) -> Result<PlatformSpec, ParseError> {
        let mut spec = PlatformSpec { name: self.ident()?, ..PlatformSpec::default() };
        self.expect(&Token::LBrace)?;
        while !self.eat(&Token::RBrace) {
            let line = self.line();
            match self.ident()?.as_str() {
                "arch" => {
                    spec.arch = self.ident()?;
                    self.expect(&Token::Semi)?;
                }
                "endian" => {
                    let value = self.ident()?;
                    spec.endian_big = match value.as_str() {
                        "big" => true,
                        "little" => false,
                        other => {
                            return Err(ParseError {
                                line,
                                message: format!("endian must be big or little, found `{other}`"),
                            })
                        }
                    };
                    self.expect(&Token::Semi)?;
                }
                "ram" => {
                    spec.ram = self.range()?;
                    self.expect(&Token::Semi)?;
                }
                "mmio" => {
                    spec.mmio = self.range()?;
                    self.expect(&Token::Semi)?;
                }
                "hypercall" => {
                    self.keyword("args")?;
                    while let Some(Token::Ident(name)) = self.peek() {
                        if name == "ret" {
                            break;
                        }
                        spec.hypercall_args.push(name.clone());
                        self.pos += 1;
                    }
                    self.keyword("ret")?;
                    spec.hypercall_ret = self.ident()?;
                    self.expect(&Token::Semi)?;
                }
                "check_reg" => {
                    spec.check_reg = self.ident()?;
                    self.expect(&Token::Semi)?;
                }
                "instrumented" => {
                    spec.instrumented = self.ident()?;
                    self.expect(&Token::Semi)?;
                }
                "ready" => {
                    let which = self.ident()?;
                    spec.ready = Some(match which.as_str() {
                        "at" => ReadyPoint::Addr(self.int()?),
                        "hypercall" => ReadyPoint::Hypercall,
                        other => {
                            return Err(ParseError {
                                line,
                                message: format!("expected `at` or `hypercall`, found `{other}`"),
                            })
                        }
                    });
                    self.expect(&Token::Semi)?;
                }
                "symbol" => {
                    let symbol = self.string()?;
                    self.expect(&Token::Eq)?;
                    let addr = self.int()?;
                    self.keyword("role")?;
                    let role_line = self.line();
                    let role_name = self.ident()?;
                    let role = FuncRole::parse(&role_name).ok_or(ParseError {
                        line: role_line,
                        message: format!("unknown function role `{role_name}`"),
                    })?;
                    let mut params = Vec::new();
                    self.expect(&Token::LParen)?;
                    while !self.eat(&Token::RParen) {
                        if !params.is_empty() {
                            self.expect(&Token::Comma)?;
                        }
                        let name = self.ident()?;
                        self.expect(&Token::Eq)?;
                        self.keyword("arg")?;
                        let idx = self.int()? as u8;
                        params.push((name, idx));
                    }
                    let mut returns = None;
                    if self.peek() == Some(&Token::Ident("returns".into())) {
                        self.pos += 1;
                        returns = Some(self.ident()?);
                    }
                    self.expect(&Token::Semi)?;
                    spec.funcs.push(FuncHook { symbol, addr, role, params, returns });
                }
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unknown platform item `{other}`"),
                    })
                }
            }
        }
        Ok(spec)
    }

    fn init(&mut self) -> Result<InitProgram, ParseError> {
        let mut program = InitProgram::default();
        self.expect(&Token::LBrace)?;
        while !self.eat(&Token::RBrace) {
            let line = self.line();
            match self.ident()?.as_str() {
                "poison" => {
                    let (start, end) = self.range()?;
                    let kind_line = self.line();
                    let kind_name = self.ident()?;
                    let kind = PoisonKind::parse(&kind_name).ok_or(ParseError {
                        line: kind_line,
                        message: format!("unknown poison kind `{kind_name}`"),
                    })?;
                    self.expect(&Token::Semi)?;
                    program.steps.push(InitStep::Poison { start, end, kind });
                }
                "unpoison" => {
                    let (start, end) = self.range()?;
                    self.expect(&Token::Semi)?;
                    program.steps.push(InitStep::Unpoison { start, end });
                }
                "alloc" => {
                    let addr = self.int()?;
                    self.keyword("size")?;
                    let size = self.int()?;
                    self.keyword("site")?;
                    let site = self.int()?;
                    self.expect(&Token::Semi)?;
                    program.steps.push(InitStep::Alloc { addr, size, site });
                }
                "global" => {
                    let addr = self.int()?;
                    self.keyword("size")?;
                    let size = self.int()?;
                    self.keyword("redzone")?;
                    let redzone = self.int()?;
                    self.expect(&Token::Semi)?;
                    program.steps.push(InitStep::Global { addr, size, redzone });
                }
                "ready" => {
                    self.expect(&Token::Semi)?;
                    program.steps.push(InitStep::Ready);
                }
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unknown init step `{other}`"),
                    })
                }
            }
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_DOC: &str = r#"
# Reference extraction of KASAN + probed platform + init routine.
sanitizer kasan {
    resource shadow { granule: 8; }
    resource quarantine { bytes: 65536; }
    intercept insn load (addr: ptr, size: usize);
    intercept insn store (addr: ptr, size: usize);
    intercept call alloc (addr: ptr, size: usize);
    intercept call free (addr: ptr);
    intercept event ready ();
}

platform openwrt_armvirt {
    arch armv;
    endian little;
    ram 0x0010_0000 .. 0x0050_0000;
    mmio 0xF0000000 .. 0xF0001000;
    hypercall args r1 r2 r3 r4 ret r1;
    check_reg r12;
    instrumented sancall;
    ready at 0x108C4;
    symbol "kmalloc" = 0x10200 role alloc (size = arg 0) returns addr;
    symbol "kfree" = 0x10280 role free (addr = arg 0);
}

init {
    poison 0x200000 .. 0x200020 global_redzone;
    unpoison 0x200020 .. 0x200040;
    alloc 0x300000 size 128 site 0x10444;
    global 0x200020 size 40 redzone 32;
    ready;
}
"#;

    #[test]
    fn parses_full_document() {
        let items = parse(FULL_DOC).unwrap();
        assert_eq!(items.len(), 3);
        let Item::Sanitizer(kasan) = &items[0] else { panic!("expected sanitizer") };
        assert_eq!(kasan.name, "kasan");
        assert_eq!(kasan.resource("shadow", "granule"), Some(8));
        assert_eq!(kasan.points.len(), 5);
        assert_eq!(kasan.point(PointKind::Insn, "load").unwrap().args.len(), 2);
        assert!(kasan.point(PointKind::Event, "ready").unwrap().args.is_empty());

        let Item::Platform(platform) = &items[1] else { panic!("expected platform") };
        assert_eq!(platform.arch, "armv");
        assert_eq!(platform.ram, (0x10_0000, 0x50_0000));
        assert_eq!(platform.hypercall_args, vec!["r1", "r2", "r3", "r4"]);
        assert_eq!(platform.ready, Some(ReadyPoint::Addr(0x108C4)));
        let kmalloc = platform.func_by_role(FuncRole::Alloc).unwrap();
        assert_eq!(kmalloc.symbol, "kmalloc");
        assert_eq!(kmalloc.params, vec![("size".to_string(), 0)]);
        assert_eq!(kmalloc.returns.as_deref(), Some("addr"));

        let Item::Init(init) = &items[2] else { panic!("expected init") };
        assert_eq!(init.steps.len(), 5);
        assert_eq!(init.steps[4], InitStep::Ready);
    }

    #[test]
    fn display_roundtrips() {
        let items = parse(FULL_DOC).unwrap();
        let printed: String = items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join("\n");
        let reparsed = parse(&printed).unwrap();
        assert_eq!(items, reparsed);
    }

    #[test]
    fn merged_arg_annotations_roundtrip() {
        let doc = "sanitizer merged { intercept insn load (addr: ptr from kasan kcsan, cpu: u32 from kcsan); }";
        let items = parse(doc).unwrap();
        let Item::Sanitizer(spec) = &items[0] else { panic!() };
        assert_eq!(spec.points[0].args[0].sources, vec!["kasan", "kcsan"]);
        let reparsed = parse(&items[0].to_string()).unwrap();
        assert_eq!(items, reparsed);
    }

    #[test]
    fn error_messages_are_located() {
        let err = parse("sanitizer x {\n bogus y;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));

        let err = parse("platform p {\n endian sideways;\n}").unwrap_err();
        assert!(err.message.contains("sideways"));

        let err = parse("init {\n poison 1 .. 2 tasty;\n}").unwrap_err();
        assert!(err.message.contains("tasty"));

        let err = parse("garbage").unwrap_err();
        assert!(err.message.contains("expected `sanitizer`"));

        let err = parse("sanitizer x {").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn ready_hypercall_variant() {
        let items = parse("platform p { ready hypercall; }").unwrap();
        let Item::Platform(p) = &items[0] else { panic!() };
        assert_eq!(p.ready, Some(ReadyPoint::Hypercall));
    }
}
