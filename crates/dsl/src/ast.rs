//! Abstract syntax of the EMBSAN DSL.
//!
//! Every AST type implements [`std::fmt::Display`], printing the canonical
//! DSL form; documents round-trip through [`crate::parse`]. The crate is
//! deliberately independent of the emulator: architecture and register names
//! are strings here, validated by the consumer (`embsan-core`).

use std::collections::BTreeMap;
use std::fmt;

/// The type of an interception-point argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArgType {
    /// 8-bit integer.
    U8,
    /// 16-bit integer.
    U16,
    /// 32-bit integer.
    U32,
    /// Pointer-sized integer.
    Usize,
    /// Guest pointer.
    Ptr,
}

impl ArgType {
    /// Parses a type name.
    pub fn parse(name: &str) -> Option<ArgType> {
        match name {
            "u8" => Some(ArgType::U8),
            "u16" => Some(ArgType::U16),
            "u32" => Some(ArgType::U32),
            "usize" => Some(ArgType::Usize),
            "ptr" => Some(ArgType::Ptr),
            _ => None,
        }
    }

    /// The canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ArgType::U8 => "u8",
            ArgType::U16 => "u16",
            ArgType::U32 => "u32",
            ArgType::Usize => "usize",
            ArgType::Ptr => "ptr",
        }
    }

    /// The wider of two types ("largest possible union of the data", §3.1).
    pub fn widest(self, other: ArgType) -> ArgType {
        self.max(other)
    }
}

impl fmt::Display for ArgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One argument of an interception point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSpec {
    /// Argument name.
    pub name: String,
    /// Argument type.
    pub ty: ArgType,
    /// Which source sanitizers requested this argument (filled by the merge;
    /// empty in a single-sanitizer spec).
    pub sources: Vec<String>,
}

impl ArgSpec {
    /// Creates an argument with no source annotations.
    pub fn new(name: &str, ty: ArgType) -> ArgSpec {
        ArgSpec { name: name.to_string(), ty, sources: Vec::new() }
    }
}

impl fmt::Display for ArgSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)?;
        if !self.sources.is_empty() {
            write!(f, " from {}", self.sources.join(" "))?;
        }
        Ok(())
    }
}

/// What an interception point attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PointKind {
    /// A sensitive instruction class (load, store, atomic).
    Insn,
    /// A function call (allocators, registration).
    Call,
    /// A machine event (ready, fault).
    Event,
}

impl PointKind {
    /// Parses a kind keyword.
    pub fn parse(name: &str) -> Option<PointKind> {
        match name {
            "insn" => Some(PointKind::Insn),
            "call" => Some(PointKind::Call),
            "event" => Some(PointKind::Event),
            _ => None,
        }
    }

    /// The canonical keyword.
    pub fn name(self) -> &'static str {
        match self {
            PointKind::Insn => "insn",
            PointKind::Call => "call",
            PointKind::Event => "event",
        }
    }
}

impl fmt::Display for PointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One interception point of a sanitizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterceptPoint {
    /// Attachment kind.
    pub kind: PointKind,
    /// Point name (`load`, `store`, `alloc`, `free`, `ready`, …).
    pub name: String,
    /// Arguments the sanitizer wants reconstructed at this point.
    pub args: Vec<ArgSpec>,
}

impl fmt::Display for InterceptPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "intercept {} {} (", self.kind, self.name)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{arg}")?;
        }
        write!(f, ");")
    }
}

/// A sanitizer interface specification (the Distiller's output for one
/// sanitizer, or the merged specification for several).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SanitizerSpec {
    /// Sanitizer name (`kasan`, `kcsan`, or a merged name).
    pub name: String,
    /// Resource requirements: `resource <name> { key: value; … }`.
    pub resources: BTreeMap<String, BTreeMap<String, u64>>,
    /// Interception points in declaration order.
    pub points: Vec<InterceptPoint>,
}

impl SanitizerSpec {
    /// Finds a point by kind and name.
    pub fn point(&self, kind: PointKind, name: &str) -> Option<&InterceptPoint> {
        self.points.iter().find(|p| p.kind == kind && p.name == name)
    }

    /// Reads a resource parameter, e.g. `resource("shadow", "granule")`.
    pub fn resource(&self, group: &str, key: &str) -> Option<u64> {
        self.resources.get(group)?.get(key).copied()
    }
}

impl fmt::Display for SanitizerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sanitizer {} {{", self.name)?;
        for (group, params) in &self.resources {
            write!(f, "    resource {group} {{ ")?;
            for (key, value) in params {
                write!(f, "{key}: {value}; ")?;
            }
            writeln!(f, "}}")?;
        }
        for point in &self.points {
            writeln!(f, "    {point}")?;
        }
        write!(f, "}}")
    }
}

/// The semantic role of a hooked firmware function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncRole {
    /// Heap allocation (`kmalloc`, `pvPortMalloc`, `LOS_MemAlloc`, …).
    Alloc,
    /// Heap release.
    Free,
    /// Global-object registration.
    Global,
    /// Ready-to-run notification.
    Ready,
}

impl FuncRole {
    /// Parses a role keyword.
    pub fn parse(name: &str) -> Option<FuncRole> {
        match name {
            "alloc" => Some(FuncRole::Alloc),
            "free" => Some(FuncRole::Free),
            "global" => Some(FuncRole::Global),
            "ready" => Some(FuncRole::Ready),
            _ => None,
        }
    }

    /// The canonical keyword.
    pub fn name(self) -> &'static str {
        match self {
            FuncRole::Alloc => "alloc",
            FuncRole::Free => "free",
            FuncRole::Global => "global",
            FuncRole::Ready => "ready",
        }
    }
}

impl fmt::Display for FuncRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A firmware function the runtime intercepts dynamically (EMBSAN-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncHook {
    /// Symbol name (may be a synthesized `fn_0x…` name for stripped firmware).
    pub symbol: String,
    /// Entry address.
    pub addr: u64,
    /// Semantic role.
    pub role: FuncRole,
    /// Parameter mapping: `(semantic name, ABI argument index)`.
    pub params: Vec<(String, u8)>,
    /// Name of the value reconstructed from the function's return, if any.
    pub returns: Option<String>,
}

impl fmt::Display for FuncHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "symbol \"{}\" = 0x{:x} role {} (", self.symbol, self.addr, self.role)?;
        for (i, (name, idx)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = arg {idx}")?;
        }
        write!(f, ")")?;
        if let Some(ret) = &self.returns {
            write!(f, " returns {ret}")?;
        }
        write!(f, ";")
    }
}

/// How the runtime learns the firmware reached its ready-to-run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyPoint {
    /// Execution reaching a fixed address.
    Addr(u64),
    /// The firmware's instrumentation issues the `READY` hypercall.
    Hypercall,
}

impl fmt::Display for ReadyPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadyPoint::Addr(addr) => write!(f, "ready at 0x{addr:x};"),
            ReadyPoint::Hypercall => write!(f, "ready hypercall;"),
        }
    }
}

/// A platform configuration specification (the Prober's main output).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlatformSpec {
    /// Firmware/platform name.
    pub name: String,
    /// Architecture name (`armv`, `mipsv`, `x86v`).
    pub arch: String,
    /// Big-endian guest memory.
    pub endian_big: bool,
    /// RAM range `start..end`.
    pub ram: (u64, u64),
    /// MMIO range `start..end`.
    pub mmio: (u64, u64),
    /// Hypercall argument registers, in order.
    pub hypercall_args: Vec<String>,
    /// Hypercall result register.
    pub hypercall_ret: String,
    /// Register carrying the address for check hypercalls.
    pub check_reg: String,
    /// Instrumentation mode (`none`, `sancall`, `native`).
    pub instrumented: String,
    /// The ready-to-run point, if known.
    pub ready: Option<ReadyPoint>,
    /// Dynamically hooked functions.
    pub funcs: Vec<FuncHook>,
}

impl PlatformSpec {
    /// Finds a hooked function by role.
    pub fn func_by_role(&self, role: FuncRole) -> Option<&FuncHook> {
        self.funcs.iter().find(|f| f.role == role)
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "platform {} {{", self.name)?;
        writeln!(f, "    arch {};", self.arch)?;
        writeln!(f, "    endian {};", if self.endian_big { "big" } else { "little" })?;
        writeln!(f, "    ram 0x{:x} .. 0x{:x};", self.ram.0, self.ram.1)?;
        writeln!(f, "    mmio 0x{:x} .. 0x{:x};", self.mmio.0, self.mmio.1)?;
        writeln!(
            f,
            "    hypercall args {} ret {};",
            self.hypercall_args.join(" "),
            self.hypercall_ret
        )?;
        writeln!(f, "    check_reg {};", self.check_reg)?;
        writeln!(f, "    instrumented {};", self.instrumented)?;
        if let Some(ready) = &self.ready {
            writeln!(f, "    {ready}")?;
        }
        for func in &self.funcs {
            writeln!(f, "    {func}")?;
        }
        write!(f, "}}")
    }
}

/// Shadow-memory poison classes used by init routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoisonKind {
    /// Redzone around a heap object.
    HeapRedzone,
    /// Redzone around a global object.
    GlobalRedzone,
    /// Freed (quarantined) memory.
    Freed,
    /// Memory that is invalid to touch for any reason.
    Invalid,
}

impl PoisonKind {
    /// Parses a poison-kind keyword.
    pub fn parse(name: &str) -> Option<PoisonKind> {
        match name {
            "heap_redzone" => Some(PoisonKind::HeapRedzone),
            "global_redzone" => Some(PoisonKind::GlobalRedzone),
            "freed" => Some(PoisonKind::Freed),
            "invalid" => Some(PoisonKind::Invalid),
            _ => None,
        }
    }

    /// The canonical keyword.
    pub fn name(self) -> &'static str {
        match self {
            PoisonKind::HeapRedzone => "heap_redzone",
            PoisonKind::GlobalRedzone => "global_redzone",
            PoisonKind::Freed => "freed",
            PoisonKind::Invalid => "invalid",
        }
    }
}

impl fmt::Display for PoisonKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One step of a sanitizer initialization routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStep {
    /// Poison a shadow range.
    Poison {
        /// Range start.
        start: u64,
        /// Range end (exclusive).
        end: u64,
        /// Poison class.
        kind: PoisonKind,
    },
    /// Unpoison a shadow range.
    Unpoison {
        /// Range start.
        start: u64,
        /// Range end (exclusive).
        end: u64,
    },
    /// Replay a boot-time allocation.
    Alloc {
        /// Chunk address.
        addr: u64,
        /// Chunk size.
        size: u64,
        /// Allocation site (guest pc).
        site: u64,
    },
    /// Register a global object with redzones.
    Global {
        /// Object address.
        addr: u64,
        /// Object size.
        size: u64,
        /// Redzone bytes on each side.
        redzone: u64,
    },
    /// Mark the system ready.
    Ready,
}

impl fmt::Display for InitStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InitStep::Poison { start, end, kind } => {
                write!(f, "poison 0x{start:x} .. 0x{end:x} {kind};")
            }
            InitStep::Unpoison { start, end } => {
                write!(f, "unpoison 0x{start:x} .. 0x{end:x};")
            }
            InitStep::Alloc { addr, size, site } => {
                write!(f, "alloc 0x{addr:x} size {size} site 0x{site:x};")
            }
            InitStep::Global { addr, size, redzone } => {
                write!(f, "global 0x{addr:x} size {size} redzone {redzone};")
            }
            InitStep::Ready => write!(f, "ready;"),
        }
    }
}

/// A sanitizer initialization routine (the Prober's dry-run output).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InitProgram {
    /// Steps in execution order.
    pub steps: Vec<InitStep>,
}

impl fmt::Display for InitProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "init {{")?;
        for step in &self.steps {
            writeln!(f, "    {step}")?;
        }
        write!(f, "}}")
    }
}

/// A top-level DSL item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `sanitizer <name> { … }`
    Sanitizer(SanitizerSpec),
    /// `platform <name> { … }`
    Platform(PlatformSpec),
    /// `init { … }`
    Init(InitProgram),
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Sanitizer(spec) => spec.fmt(f),
            Item::Platform(spec) => spec.fmt(f),
            Item::Init(init) => init.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_type_widening() {
        assert_eq!(ArgType::U8.widest(ArgType::U32), ArgType::U32);
        assert_eq!(ArgType::Usize.widest(ArgType::Ptr), ArgType::Ptr);
        assert_eq!(ArgType::U16.widest(ArgType::U16), ArgType::U16);
    }

    #[test]
    fn display_forms() {
        let point = InterceptPoint {
            kind: PointKind::Insn,
            name: "load".into(),
            args: vec![ArgSpec::new("addr", ArgType::Ptr), ArgSpec::new("size", ArgType::Usize)],
        };
        assert_eq!(point.to_string(), "intercept insn load (addr: ptr, size: usize);");

        let step = InitStep::Poison { start: 0x10, end: 0x20, kind: PoisonKind::GlobalRedzone };
        assert_eq!(step.to_string(), "poison 0x10 .. 0x20 global_redzone;");

        let hook = FuncHook {
            symbol: "kmalloc".into(),
            addr: 0x1000,
            role: FuncRole::Alloc,
            params: vec![("size".into(), 0)],
            returns: Some("addr".into()),
        };
        assert_eq!(
            hook.to_string(),
            "symbol \"kmalloc\" = 0x1000 role alloc (size = arg 0) returns addr;"
        );
    }

    #[test]
    fn keyword_roundtrips() {
        for kind in [PointKind::Insn, PointKind::Call, PointKind::Event] {
            assert_eq!(PointKind::parse(kind.name()), Some(kind));
        }
        for role in [FuncRole::Alloc, FuncRole::Free, FuncRole::Global, FuncRole::Ready] {
            assert_eq!(FuncRole::parse(role.name()), Some(role));
        }
        for kind in [
            PoisonKind::HeapRedzone,
            PoisonKind::GlobalRedzone,
            PoisonKind::Freed,
            PoisonKind::Invalid,
        ] {
            assert_eq!(PoisonKind::parse(kind.name()), Some(kind));
        }
        for ty in [ArgType::U8, ArgType::U16, ArgType::U32, ArgType::Usize, ArgType::Ptr] {
            assert_eq!(ArgType::parse(ty.name()), Some(ty));
        }
    }
}
