//! `--workers` CLI behaviour: parallel worker counts agree with each
//! other, and the flag composes with `--journal`/`--resume` by falling
//! back to the bit-identical single-thread supervised path.

use std::path::PathBuf;
use std::process::Command;

fn embsan() -> Command {
    Command::new(env!("CARGO_BIN_EXE_embsan"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("embsan-workers-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_ok(args: &[&str]) -> String {
    run_ok_captured(args).0
}

/// Like [`run_ok`] but also returns stderr (structured degraded-mode
/// warnings are emitted there as `embsan-trace-v1` events).
fn run_ok_captured(args: &[&str]) -> (String, String) {
    let output = embsan().args(args).output().unwrap();
    assert!(
        output.status.success(),
        "embsan {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
    )
}

/// The `execs … corpus … coverage … findings …` summary line.
fn stats_line(stdout: &str) -> String {
    stdout
        .lines()
        .find(|l| l.starts_with("execs "))
        .unwrap_or_else(|| panic!("no stats line in:\n{stdout}"))
        .to_string()
}

fn build_image(name: &str) -> PathBuf {
    let image = scratch(name);
    run_ok(&["build", "emblinux", "--bug", "fuzz/target:oob-write", "-o", image.to_str().unwrap()]);
    image
}

#[test]
fn parallel_worker_counts_agree() {
    let image = build_image("agree.evfw");
    let image = image.to_str().unwrap();
    // An explicit --workers (even 1) routes through the parallel engine, so
    // every worker count must report the same stats and findings.
    let out1 = run_ok(&["fuzz", image, "--iters", "100", "--seed", "9", "--workers", "1"]);
    let out2 = run_ok(&["fuzz", image, "--iters", "100", "--seed", "9", "--workers", "2"]);
    let out4 = run_ok(&["fuzz", image, "--iters", "100", "--seed", "9", "--workers", "4"]);
    assert_eq!(stats_line(&out1), stats_line(&out2));
    assert_eq!(stats_line(&out2), stats_line(&out4));
    // Findings lines (if any) must agree too.
    let findings = |s: &str| -> Vec<String> {
        s.lines().filter(|l| l.starts_with('[')).map(str::to_string).collect()
    };
    assert_eq!(findings(&out1), findings(&out2));
    assert_eq!(findings(&out2), findings(&out4));
}

#[test]
fn workers_flag_composes_with_journal_and_resume() {
    let image = build_image("journal.evfw");
    let image = image.to_str().unwrap();

    // Reference: uninterrupted journaled run, no --workers.
    let journal_ref = scratch("ref.evj");
    let reference = run_ok(&[
        "fuzz",
        image,
        "--iters",
        "150",
        "--seed",
        "5",
        "--journal",
        journal_ref.to_str().unwrap(),
    ]);

    // --workers on a journaled run falls back to single-thread (with a
    // structured degraded-mode warning on stderr) so the journal contract
    // holds; kill it partway, then resume.
    let journal = scratch("killed.evj");
    let (killed, warnings) = run_ok_captured(&[
        "fuzz",
        image,
        "--iters",
        "150",
        "--seed",
        "5",
        "--journal",
        journal.to_str().unwrap(),
        "--kill-after",
        "60",
        "--workers",
        "4",
    ]);
    assert!(
        warnings.contains("\"event\":\"degraded-mode\"") && warnings.contains("ignoring --workers"),
        "structured supervised-fallback warning missing:\nstdout: {killed}\nstderr: {warnings}"
    );
    let resumed = run_ok(&["fuzz", "--resume", journal.to_str().unwrap()]);

    // The killed-and-resumed campaign ends bit-identically to the
    // uninterrupted one.
    assert_eq!(stats_line(&reference), stats_line(&resumed));
}
