//! Minimal dependency-free argument parsing.

/// Parsed command-line flags: positional arguments plus `--key value`
/// options (repeatable) and bare `--flags`.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` options (a key may repeat).
    pub options: Vec<(String, String)>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

/// Option keys that take a value (everything else after `--` is a flag).
const VALUED: &[&str] = &[
    "arch",
    "san",
    "bug",
    "o",
    "mode",
    "call",
    "iters",
    "seed",
    "syscalls",
    "cpus",
    "budget",
    "journal",
    "resume",
    "fault-plan",
    "kill-after",
    "checkpoint-every",
    "workers",
    "epoch",
    "json",
    "toggles",
    "baseline",
    "max-regression",
    "metrics-out",
    "trace-out",
    "out",
    "format",
    "analysis",
    "target",
    "state-dir",
    "socket",
    "slice",
    "max-active",
    "max-queued",
    "max-strikes",
    "turn-timeout-ms",
    "await-jobs",
    "report",
    "firmware",
    "priority",
    "drill",
    "mmio-model-free",
];

/// Parses `argv` (without the subcommand itself).
///
/// # Errors
///
/// Returns a message if a valued option is missing its value.
pub fn parse(argv: &[String]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut iter = argv.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--").or_else(|| arg.strip_prefix('-')) {
            if VALUED.contains(&key) {
                let value = iter.next().ok_or_else(|| format!("option --{key} needs a value"))?;
                parsed.options.push((key.to_string(), value.clone()));
            } else {
                parsed.flags.push(key.to_string());
            }
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// The last value given for `key`.
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Every value given for `key`, in order.
    pub fn option_all(&self, key: &str) -> Vec<&str> {
        self.options.iter().filter(|(k, _)| k == key).map(|(_, v)| v.as_str()).collect()
    }

    /// Parses an integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn option_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.option(key) {
            None => Ok(default),
            Some(text) => {
                text.parse().map_err(|_| format!("--{key} expects an integer, got `{text}`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixes_positionals_options_and_flags() {
        let parsed = parse(&argv(&[
            "emblinux",
            "--arch",
            "mips",
            "--bug",
            "a:uaf",
            "--bug",
            "b:oob-write",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(parsed.positional, vec!["emblinux"]);
        assert_eq!(parsed.option("arch"), Some("mips"));
        assert_eq!(parsed.option_all("bug"), vec!["a:uaf", "b:oob-write"]);
        assert!(parsed.flags.contains(&"verbose".to_string()));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&argv(&["--arch"])).is_err());
    }

    #[test]
    fn numeric_options() {
        let parsed = parse(&argv(&["--iters", "500"])).unwrap();
        assert_eq!(parsed.option_u64("iters", 10).unwrap(), 500);
        assert_eq!(parsed.option_u64("seed", 7).unwrap(), 7);
        let parsed = parse(&argv(&["--iters", "abc"])).unwrap();
        assert!(parsed.option_u64("iters", 10).is_err());
    }
}
