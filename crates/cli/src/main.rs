//! `embsan` — the command-line front end.
//!
//! ```text
//! embsan build <os> [--arch A] [--san M] [--bug LOC:KIND]... [-o FILE]
//! embsan inspect <image>
//! embsan disasm <image>
//! embsan distill [header files...]
//! embsan probe <image> [--mode auto|c|source|binary]
//! embsan run <image> [--call NR:ARG,ARG,...]... [--cpus N]
//! embsan fuzz <image> [--iters N] [--seed S] [--syscalls N] [--cpus N]
//! ```
//!
//! Run `embsan help` for details.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("embsan: {message}");
            ExitCode::FAILURE
        }
    }
}
