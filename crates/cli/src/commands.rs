//! Subcommand implementations.

use std::fs;

use embsan_analysis::audit::audit;
use embsan_analysis::cfg::Cfg;
use embsan_analysis::races::race_candidates;
use embsan_analysis::static_priors_from_cfg;
use embsan_asm::image::{FirmwareImage, InstrMode};
use embsan_core::probe::{probe, ProbeMode};
use embsan_core::session::Session;
use embsan_dsl::merge;
use embsan_emu::hook::HookConfig;
use embsan_emu::isa::{Insn, Word};
use embsan_emu::profile::{Arch, ArchProfile};
use embsan_guestos::bugs::{BugKind, BugSpec};
use embsan_guestos::executor::ExecProgram;
use embsan_guestos::{os, BuildOptions, SanMode};

use crate::args::{parse, Parsed};

const HELP: &str = "\
embsan — decoupled on-host sanitizing of embedded OS firmware

USAGE:
  embsan build <emblinux|freertos|liteos|vxworks> [options]   build demo firmware
      --arch arm|mips|x86       architecture profile (default arm)
      --san none|c|native-kasan|native-kcsan
                                 instrumentation mode (default none)
      --bug LOCATION:KIND        seed a bug (repeatable); KIND is one of
                                 oob-write|oob-read|oob-far|uaf|double-free|
                                 null-deref|global-oob|race|uninit-read
      --strip                    strip symbols (closed-source image)
      --wide-gates               guard seeded bugs with one wide multi-byte
                                 comparison instead of staged byte gates
                                 (exercises the analyze operand harvester)
      -o FILE                    output path (default firmware.evfw)
  embsan inspect <image>         show image header, symbols, globals
  embsan analyze <image>         static analysis: CFG stats, probe-coverage
                                 audit, allocator candidates, race candidates,
                                 comparison-operand harvest, static distances
      --target A[,B...]          direction targets (addresses or symbol
                                 names; repeatable; default: race-candidate
                                 access sites)
      --out FILE                 write the embsan-analysis-v1 artifact
                                 (feeds `embsan fuzz --analysis`)
      --json FILE|-              same artifact schema; `-` prints pure JSON
                                 to stdout (no plain report)
  embsan disasm <image>          disassemble the text section
  embsan distill [headers...]    distill sanitizer headers to merged DSL
                                 (defaults to the bundled KASAN+KCSAN)
  embsan probe <image> [--mode auto|c|source|binary]
                                 run the platform prober; print DSL artifacts
  embsan run <image> [--call NR:ARG,...]... [--cpus N] [--budget N]
                                 boot under EMBSAN and run executor calls
  embsan fuzz <image> [--iters N] [--seed S] [--syscalls N] [--cpus N]
                                 coverage-guided fuzzing with EMBSAN attached
      --analysis FILE            directed campaign steered by an
                                 embsan-analysis-v1 artifact: corpus entries
                                 are scored by static distance to the target
                                 set and harvested comparison operands join
                                 the dictionary stages. Deterministic for a
                                 fixed seed + artifact; ignored (with a
                                 note) on supervised/journaled runs
      --target A[,B...]          override the artifact's default targets
                                 (addresses or symbol names; needs
                                 --analysis)
      --workers N                parallel campaign engine with N workers;
                                 findings and corpus are identical to the
                                 1-worker run (deterministic merges). Ignored
                                 (single-thread) on supervised/journaled runs
      --epoch N                  merge period of the parallel engine
                                 (iterations per epoch, default 64)
      --journal FILE             supervised run; stream findings, corpus adds
                                 and checkpoints to an append-only journal
      --resume FILE              resume a killed campaign from its journal
                                 (image path comes from the journal; results
                                 are bit-identical to an uninterrupted run)
      --fault-plan FILE          arm a deterministic fault-injection plan
                                 (`at N [every M xK] <kind> ...` per line)
      --kill-after N             resilience drill: stop after N iterations
      --checkpoint-every N       journal checkpoint cadence (default 500)
      --supervised               watchdog supervision without a journal
      --metrics-out FILE         write an embsan-metrics-v1 snapshot of the
                                 run (deterministic entries only, so the
                                 file is identical for every worker count
                                 at a fixed seed)
      --trace-out FILE           write the merged embsan-trace-v1 event
                                 trace (deterministic event subset; plain
                                 runs route through the supervised loop to
                                 collect per-iteration spans)
      --mmio-model-free BASE:SIZE
                                 serve guest reads in [BASE, BASE+SIZE) from
                                 a fuzzer-controlled response stream with
                                 per-(pc, addr) refinement instead of
                                 faulting (hex with 0x, or decimal)
      --mmio-withheld            additionally hide the platform device
                                 window from the guest (the region must
                                 cover it): fuzz a firmware whose MMIO map
                                 was never modelled. Programs then run to
                                 their fixed budget slice; journaled runs
                                 record the configuration and resume it
  embsan trace <image> [--call NR:ARG,...]... [--cpus N] [--budget N]
                                 boot under EMBSAN, run executor calls, and
                                 export the structured event trace
      --format jsonl|chrome      output format (default jsonl, the
                                 embsan-trace-v1 stream; chrome emits a
                                 trace_event document for Perfetto)
      --out FILE                 write the trace here (default stdout)
      --metrics-out FILE         also write the session's embsan-metrics-v1
                                 snapshot
  embsan bench [firmware-name] [--workers N] [--iters N] [--seed S]
                                 fuzzing-throughput benchmark on a seed
                                 firmware (default \"TP-Link WDR-7660\"):
                                 execs/sec for 1 vs N workers plus
                                 translation-cache generation telemetry
      --toggles N                config-toggle cycles measured (default 8)
      --json FILE                write the embsan-bench-throughput-v1 report
                                 (the checked-in BENCH_throughput.json)
      --baseline FILE            compare against a checked-in report and
                                 exit non-zero on a throughput or per-worker
                                 memory regression
                                 (oversubscribed points are never gated)
      --max-regression PCT       tolerated drop vs baseline (default 25)
  embsan serve --state-dir DIR --socket PATH
                                 crash-tolerant campaign daemon: schedules
                                 submitted campaigns across a supervised
                                 worker pool in fair-share slices; every
                                 durable fact lives under the state
                                 directory, so kill -9 + restart resumes
                                 all jobs bit-identically
      --workers N                worker threads (default 2)
      --slice N                  iterations per scheduling turn and journal
                                 checkpoint cadence (default 50)
      --max-active N             runnable jobs before the rest are parked
                                 lowest-priority-first (default 4)
      --max-queued N             non-terminal jobs before submissions are
                                 shed (default 32)
      --max-strikes N            crashed/wedged turns before a job is
                                 quarantined (default 2)
      --turn-timeout-ms N        wall-clock wedge detector per turn
                                 (default 120000)
      --await-jobs N             exit once N jobs are terminal (soak/CI)
      --report FILE              write the embsan-serve-report-v1 document
                                 on exit
      --trace                    collect per-job deterministic event traces
  embsan submit --socket PATH --firmware NAME [--iters N] [--seed S]
                                 submit a campaign to a running daemon
      --priority N               scheduling priority 0-255; higher runs
                                 first and is shed last (default 0)
      --drill panic-after:N|wedge-at:N
                                 arm a resilience drill (testing/soak)
  embsan jobs --socket PATH [action]
                                 query a running daemon; the action is one
                                 of jobs (default, list jobs and phases),
                                 findings (the deduplicated findings
                                 store), report (embsan-serve-report-v1),
                                 ping, or shutdown (jobs resume on the
                                 next start)
  embsan help                    this text
";

/// Dispatches a command line.
///
/// # Errors
///
/// Returns a human-readable message for any failure.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((command, rest)) = argv.split_first() else {
        print!("{HELP}");
        return Ok(());
    };
    let parsed = parse(rest)?;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "build" => cmd_build(&parsed),
        "inspect" => cmd_inspect(&parsed),
        "analyze" => cmd_analyze(&parsed),
        "disasm" => cmd_disasm(&parsed),
        "distill" => cmd_distill(&parsed),
        "probe" => cmd_probe(&parsed),
        "run" => cmd_run(&parsed),
        "trace" => cmd_trace(&parsed),
        "fuzz" => cmd_fuzz(&parsed),
        "bench" => cmd_bench(&parsed),
        "serve" => cmd_serve(&parsed),
        "submit" => cmd_submit(&parsed),
        "jobs" => cmd_jobs(&parsed),
        other => Err(format!("unknown command `{other}` (try `embsan help`)")),
    }
}

fn parse_arch(parsed: &Parsed) -> Result<Arch, String> {
    match parsed.option("arch").unwrap_or("arm") {
        "arm" | "armv" => Ok(Arch::Armv),
        "mips" | "mipsv" => Ok(Arch::Mipsv),
        "x86" | "x86v" => Ok(Arch::X86v),
        other => Err(format!("unknown architecture `{other}`")),
    }
}

fn parse_bug(text: &str) -> Result<BugSpec, String> {
    let (location, kind) = text
        .rsplit_once(':')
        .ok_or_else(|| format!("--bug expects LOCATION:KIND, got `{text}`"))?;
    let kind = match kind {
        "oob-write" => BugKind::OobWrite,
        "oob-read" => BugKind::OobRead,
        "oob-far" => BugKind::OobWriteFar,
        "uaf" => BugKind::Uaf,
        "double-free" => BugKind::DoubleFree,
        "null-deref" => BugKind::NullDeref,
        "global-oob" => BugKind::GlobalOob,
        "race" => BugKind::Race,
        "uninit-read" => BugKind::UninitRead,
        other => return Err(format!("unknown bug kind `{other}`")),
    };
    Ok(BugSpec::new(location, kind))
}

fn load_image(parsed: &Parsed) -> Result<FirmwareImage, String> {
    let path = parsed.positional.first().ok_or("expected an image path")?;
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    FirmwareImage::parse(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn cmd_build(parsed: &Parsed) -> Result<(), String> {
    let os_name = parsed
        .positional
        .first()
        .ok_or("expected an OS flavour (emblinux|freertos|liteos|vxworks)")?;
    let arch = parse_arch(parsed)?;
    let san = match parsed.option("san").unwrap_or("none") {
        "none" => SanMode::None,
        "c" | "sancall" => SanMode::SanCall,
        "native-kasan" => SanMode::NativeKasan,
        "native-kcsan" => SanMode::NativeKcsan,
        other => return Err(format!("unknown sanitizer mode `{other}`")),
    };
    let bugs: Vec<BugSpec> =
        parsed.option_all("bug").into_iter().map(parse_bug).collect::<Result<_, _>>()?;
    let needs_smp = bugs.iter().any(|b| b.kind == BugKind::Race);
    let opts = BuildOptions::new(arch)
        .san(san)
        .cpus(if needs_smp { 2 } else { 1 })
        .wide_gates(parsed.flags.iter().any(|f| f == "wide-gates"));
    let image = match os_name.as_str() {
        "emblinux" => os::emblinux::build(&opts, &bugs),
        "freertos" => os::freertos::build(&opts, &bugs),
        "liteos" => os::liteos::build(&opts, &bugs),
        "vxworks" => os::vxworks::build_unstripped(&opts, &bugs),
        other => return Err(format!("unknown OS flavour `{other}`")),
    }
    .map_err(|e| format!("build failed: {e}"))?;
    let image = if parsed.flags.iter().any(|f| f == "strip") { image.strip() } else { image };
    let out = parsed.option("o").unwrap_or("firmware.evfw");
    fs::write(out, image.to_bytes()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out}: {} ({}, {:?}), {} bytes text, {} symbols, {} seeded bug(s)",
        os_name,
        image.arch,
        image.instr,
        image.text.len(),
        image.symbols.len(),
        bugs.len()
    );
    Ok(())
}

fn cmd_inspect(parsed: &Parsed) -> Result<(), String> {
    let image = load_image(parsed)?;
    println!("arch:         {}", image.arch);
    println!("instrumented: {:?}", image.instr);
    println!("entry:        {:#010x}", image.entry);
    println!("rom:          {:#010x} ({} bytes)", image.rom_base, image.text.len());
    println!("ram:          {:#010x} ({} bytes)", image.ram_base, image.ram_size);
    match image.ready {
        Some(addr) => println!("ready:        {addr:#010x}"),
        None => println!("ready:        (unknown)"),
    }
    println!("symbols:      {}", image.symbols.len());
    for sym in &image.symbols {
        println!("  {:#010x} {:>7} {:?} {}", sym.addr, sym.size, sym.kind, sym.name);
    }
    println!("sanitized globals: {}", image.globals.len());
    for g in &image.globals {
        println!(
            "  {:#010x} size {:>5} redzones {}/{} {}",
            g.addr, g.size, g.redzone_before, g.redzone_after, g.name
        );
    }
    Ok(())
}

/// Parses `--target` lists: comma-separated addresses (`0x`-hex or
/// decimal) or symbol names resolved against the image.
fn parse_targets(parsed: &Parsed, image: &FirmwareImage) -> Result<Vec<u32>, String> {
    let mut targets = Vec::new();
    for list in parsed.option_all("target") {
        for token in list.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let addr = if let Some(hex) = token.strip_prefix("0x") {
                u32::from_str_radix(hex, 16).map_err(|_| format!("bad target address `{token}`"))?
            } else if token.bytes().all(|b| b.is_ascii_digit()) {
                token.parse().map_err(|_| format!("bad target address `{token}`"))?
            } else {
                image.symbol(token).ok_or_else(|| format!("unknown target symbol `{token}`"))?
            };
            targets.push(addr);
        }
    }
    Ok(targets)
}

fn cmd_analyze(parsed: &Parsed) -> Result<(), String> {
    use embsan_analysis::{block_distances, AnalysisArtifact};
    let image = load_image(parsed)?;
    let cfg = Cfg::build(&image);
    let mut artifact = AnalysisArtifact::from_cfg(&cfg, &image);
    let targets = parse_targets(parsed, &image)?;
    if !targets.is_empty() {
        artifact.default_targets = targets;
    }
    let json_stdout = parsed.option("json") == Some("-");
    for path in
        [parsed.option("out"), parsed.option("json").filter(|&p| p != "-")].into_iter().flatten()
    {
        fs::write(path, artifact.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !json_stdout {
            println!(
                "wrote {path}: embsan-analysis-v1, {} blocks, {} operands, {} targets",
                artifact.graph.nodes.len(),
                artifact.cmp_operands.len(),
                artifact.default_targets.len()
            );
        }
    }
    if json_stdout {
        // Pure JSON on stdout for piping; the plain report is suppressed.
        print!("{}", artifact.to_json());
        return Ok(());
    }
    println!("== control-flow recovery ==");
    println!(
        "text:       {} bytes, {} reachable instructions ({:.1}% of text)",
        image.text.len(),
        cfg.reachable_insns(),
        100.0 * cfg.reachable_fraction()
    );
    println!(
        "blocks:     {}   functions: {}   address-taken targets: {}",
        cfg.blocks.len(),
        cfg.functions.len(),
        cfg.address_taken.len()
    );

    println!("\n== probe-coverage audit (memory probes armed) ==");
    let report = audit(&image, HookConfig::all()).map_err(|e| e.to_string())?;
    println!(
        "{} blocks audited, {} memory sites checked, {} probed ops",
        report.blocks_audited, report.checked_sites, report.probed_sites
    );
    if report.is_clean() {
        println!("verdict:    CLEAN — every reachable memory op carries a probe");
    } else {
        println!(
            "verdict:    VIOLATIONS — {} missing, {} spurious, {} uncovered",
            report.missing.len(),
            report.spurious.len(),
            report.uncovered.len()
        );
        for (pc, insn) in report.missing.iter().take(8) {
            println!("  missing probe at {pc:#010x}: {insn}");
        }
    }

    println!("\n== allocator-signature candidates (ranked) ==");
    let priors = static_priors_from_cfg(&cfg, &image);
    let name_of =
        |addr: u32| image.function_at(addr).map_or_else(String::new, |s| format!("  {}", s.name));
    for &addr in &priors.alloc_candidates {
        println!("  alloc {:#010x}{}", addr, name_of(addr));
    }
    for &addr in &priors.free_candidates {
        println!("  free  {:#010x}{}", addr, name_of(addr));
    }
    if priors.alloc_candidates.is_empty() && priors.free_candidates.is_empty() {
        println!("  (none)");
    }

    println!("\n== lockset race candidates (KCSAN watchpoint priority order) ==");
    let candidates = race_candidates(&cfg, &image);
    if candidates.is_empty() {
        println!("  (none)");
    }
    for c in candidates.iter().take(10) {
        println!(
            "  {:#010x}{} sites={} writes={} unlocked={} unlocked-writes={}",
            c.addr,
            c.symbol.as_ref().map_or_else(String::new, |s| format!(" ({s})")),
            c.sites,
            c.writes,
            c.unlocked_sites,
            c.unlocked_writes
        );
    }

    // Both sections print in deterministic sorted order (operands sorted by
    // value, distances by block address) so the output golden-tests cleanly.
    println!("\n== comparison-operand harvest (multi-byte branch constants) ==");
    if artifact.cmp_operands.is_empty() {
        println!("  (none)");
    }
    for op in artifact.cmp_operands.iter().take(12) {
        println!("  {:#010x} guarded at {:#010x}{}", op.value, op.block, name_of(op.block));
    }
    if artifact.cmp_operands.len() > 12 {
        println!("  ... {} more", artifact.cmp_operands.len() - 12);
    }

    println!("\n== static distance to targets (milli-edges) ==");
    if artifact.default_targets.is_empty() {
        println!("  (no targets: no race candidates found and no --target given)");
    } else {
        let list: Vec<String> =
            artifact.default_targets.iter().map(|t| format!("{t:#010x}")).collect();
        println!("  targets: {}", list.join(", "));
        let dist = block_distances(&artifact.graph, &artifact.default_targets);
        println!("  {} of {} blocks reach a target", dist.len(), artifact.graph.nodes.len());
        let max = dist.values().max().copied().unwrap_or(0);
        println!("  farthest reaching block: {max} milli-edges");
    }
    Ok(())
}

fn cmd_disasm(parsed: &Parsed) -> Result<(), String> {
    let image = load_image(parsed)?;
    let profile = ArchProfile::for_arch(image.arch);
    for (i, chunk) in image.text.chunks_exact(4).enumerate() {
        let addr = image.rom_base + 4 * i as u32;
        if let Some(sym) = image.symbols.iter().find(|s| s.addr == addr) {
            println!("\n{}:", sym.name);
        }
        let word = Word::from_bytes([chunk[0], chunk[1], chunk[2], chunk[3]], profile.endian);
        match Insn::decode(word) {
            Ok(insn) => println!("  {addr:#010x}: {insn}"),
            Err(_) => println!("  {addr:#010x}: .word {:#010x}", word.0),
        }
    }
    Ok(())
}

fn cmd_distill(parsed: &Parsed) -> Result<(), String> {
    let specs = if parsed.positional.is_empty() {
        embsan_core::reference_specs().map_err(|e| e.to_string())?
    } else {
        parsed
            .positional
            .iter()
            .map(|path| {
                let text =
                    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                embsan_core::distill::distill(&text).map_err(|e| format!("{path}: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?
    };
    for spec in &specs {
        println!("{spec}\n");
    }
    println!("# merged specification (§3.1 union rules)\n{}", merge(&specs));
    Ok(())
}

fn probe_mode(parsed: &Parsed, image: &FirmwareImage) -> Result<ProbeMode, String> {
    match parsed.option("mode").unwrap_or("auto") {
        "c" | "compile-time" => Ok(ProbeMode::CompileTime),
        "source" => Ok(ProbeMode::DynamicSource),
        "binary" => Ok(ProbeMode::DynamicBinary),
        "auto" => Ok(if image.instr == InstrMode::SanCall {
            ProbeMode::CompileTime
        } else if image.has_symbols() {
            ProbeMode::DynamicSource
        } else {
            ProbeMode::DynamicBinary
        }),
        other => Err(format!("unknown probe mode `{other}`")),
    }
}

fn cmd_probe(parsed: &Parsed) -> Result<(), String> {
    let image = load_image(parsed)?;
    let mode = probe_mode(parsed, &image)?;
    let artifacts = probe(&image, mode, None).map_err(|e| e.to_string())?;
    println!("# probed with {mode:?}");
    print!("{}", artifacts.to_dsl());
    Ok(())
}

fn parse_call(text: &str) -> Result<(u8, Vec<u32>), String> {
    let (nr, args) = match text.split_once(':') {
        Some((nr, args)) => (nr, args),
        None => (text, ""),
    };
    let nr: u8 =
        nr.parse().map_err(|_| format!("--call expects NR:ARG,...; bad syscall `{nr}`"))?;
    let args = if args.is_empty() {
        Vec::new()
    } else {
        args.split(',')
            .map(|a| {
                let a = a.trim();
                if let Some(hex) = a.strip_prefix("0x") {
                    u32::from_str_radix(hex, 16)
                } else {
                    a.parse()
                }
                .map_err(|_| format!("bad argument `{a}`"))
            })
            .collect::<Result<_, _>>()?
    };
    Ok((nr, args))
}

/// Parses `--mmio-model-free BASE:SIZE` (hex with `0x`, or decimal) and the
/// companion `--mmio-withheld` switch into the model-free MMIO region.
fn mmio_model_free(parsed: &Parsed) -> Result<(Option<(u32, u32)>, bool), String> {
    let withheld = parsed.flags.iter().any(|f| f == "mmio-withheld");
    let Some(text) = parsed.option("mmio-model-free") else {
        if withheld {
            return Err("--mmio-withheld requires --mmio-model-free BASE:SIZE".to_string());
        }
        return Ok((None, false));
    };
    let parse = |part: &str| -> Result<u32, String> {
        let (digits, radix) = part.strip_prefix("0x").map_or((part, 10), |hex| (hex, 16));
        u32::from_str_radix(digits, radix).map_err(|e| format!("--mmio-model-free {text}: {e}"))
    };
    let (base, size) = text
        .split_once(':')
        .ok_or_else(|| format!("--mmio-model-free {text}: expected BASE:SIZE"))?;
    let region = (parse(base)?, parse(size)?);
    if region.1 == 0 {
        return Err("--mmio-model-free: size must be non-zero".to_string());
    }
    Ok((Some(region), withheld))
}

fn ready_session(parsed: &Parsed) -> Result<(Session, FirmwareImage), String> {
    let image = load_image(parsed)?;
    let mode = probe_mode(parsed, &image)?;
    let artifacts = probe(&image, mode, None).map_err(|e| e.to_string())?;
    let specs = embsan_core::reference_specs().map_err(|e| e.to_string())?;
    let cpus = parsed.option_u64("cpus", 1)? as usize;
    let mut session =
        Session::with_cpus(&image, &specs, &artifacts, cpus).map_err(|e| e.to_string())?;
    let (model_free, withheld) = mmio_model_free(parsed)?;
    if let Some((base, size)) = model_free {
        // Before run_to_ready, so boot-time refinement is in the reset
        // snapshot (see Session::enable_model_free).
        session.enable_model_free(base, size, withheld);
    }
    session.run_to_ready(parsed.option_u64("budget", 400_000_000)?).map_err(|e| e.to_string())?;
    Ok((session, image))
}

fn cmd_run(parsed: &Parsed) -> Result<(), String> {
    let (mut session, _image) = ready_session(parsed)?;
    let program = calls_program(parsed)?;
    let outcome = session.run_program(&program, 50_000_000).map_err(|e| e.to_string())?;
    println!("exit:    {:?}", outcome.exit);
    println!("results: {:?}", outcome.results);
    if !outcome.console.is_empty() {
        println!("console: {}", String::from_utf8_lossy(&outcome.console));
    }
    if outcome.reports.is_empty() {
        println!("no sanitizer reports");
    }
    for report in &outcome.reports {
        print!("{}", session.render_report(report));
    }
    Ok(())
}

/// Builds the program from repeated `--call` options (default: syscall 0).
fn calls_program(parsed: &Parsed) -> Result<ExecProgram, String> {
    let mut program = ExecProgram::new();
    for call in parsed.option_all("call") {
        let (nr, args) = parse_call(call)?;
        program.push(nr, &args);
    }
    if program.calls.is_empty() {
        program.push(0, &[]);
    }
    Ok(program)
}

fn cmd_trace(parsed: &Parsed) -> Result<(), String> {
    use embsan_obs::{trace_to_chrome, trace_to_jsonl, TraceConfig};
    let image_path = parsed.positional.first().ok_or("expected an image path")?.clone();
    let (mut session, _image) = ready_session(parsed)?;
    // Enabled after `run_to_ready` so the trace holds only the programs'
    // events; the full preset is reproducible because a single sequential
    // session's cache behaviour is itself deterministic.
    session.enable_tracing(TraceConfig::full());
    let program = calls_program(parsed)?;
    let outcome = session.run_program(&program, 50_000_000).map_err(|e| e.to_string())?;
    let events = session.take_trace();
    let text = match parsed.option("format").unwrap_or("jsonl") {
        "jsonl" => trace_to_jsonl(&events, &[("image", &image_path)]),
        "chrome" => trace_to_chrome(&events),
        other => return Err(format!("unknown trace format `{other}` (jsonl|chrome)")),
    };
    match parsed.option("out") {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}: {} events, exit {:?}", events.len(), outcome.exit);
        }
        // Status goes to stderr so a piped stdout stays pure JSONL.
        None => {
            print!("{text}");
            eprintln!("{} events, exit {:?}", events.len(), outcome.exit);
        }
    }
    if let Some(path) = parsed.option("metrics-out") {
        let json = session.metrics_snapshot().to_json(false);
        fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Syscall descriptions for image-based fuzzing. Without source knowledge
/// the interface size is a tester input; the default assumes the standard
/// executor layout with up to 16 gated syscalls.
fn fuzz_descriptions(parsed: &Parsed) -> Result<Vec<embsan_fuzz::SyscallDesc>, String> {
    let extra = parsed.option_u64("syscalls", 16)? as usize;
    let mut syscall_descs = embsan_fuzz::descs::base_descriptions();
    for i in 0..extra {
        syscall_descs.push(embsan_fuzz::SyscallDesc {
            nr: embsan_guestos::executor::sys::BUG_BASE + i as u8,
            args: vec![embsan_fuzz::ArgKind::Key],
        });
    }
    Ok(syscall_descs)
}

/// Loads `--analysis` (when given) into directed-campaign steering,
/// cross-checked against the image and with `--target` overrides applied.
fn fuzz_direction(
    parsed: &Parsed,
    image: &FirmwareImage,
) -> Result<Option<embsan_fuzz::Direction>, String> {
    let Some(path) = parsed.option("analysis") else {
        if parsed.option("target").is_some() {
            return Err("--target needs --analysis <artifact>".to_string());
        }
        return Ok(None);
    };
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let artifact =
        embsan_analysis::AnalysisArtifact::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if !artifact.matches_image(image) {
        return Err(format!(
            "{path}: artifact was built from a different image (arch/entry/text mismatch)"
        ));
    }
    let targets = parse_targets(parsed, image)?;
    let direction = embsan_fuzz::Direction::from_artifact(&artifact, &targets)
        .map_err(|e| format!("{path}: {e}"))?;
    println!(
        "directed: {} target(s), {} harvested operand(s) from {path}",
        direction.targets().len(),
        direction.operands().len()
    );
    Ok(Some(direction))
}

/// Reads and parses `--fault-plan FILE` (when given).
fn fuzz_fault_plan(parsed: &Parsed) -> Result<Option<embsan_emu::fault::FaultPlan>, String> {
    let Some(path) = parsed.option("fault-plan") else { return Ok(None) };
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let plan = embsan_emu::fault::FaultPlan::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(Some(plan))
}

/// Builds the supervisor policy from command-line options.
fn fuzz_supervisor_config(parsed: &Parsed) -> Result<embsan_fuzz::SupervisorConfig, String> {
    let config = embsan_fuzz::SupervisorConfig {
        checkpoint_interval: parsed.option_u64("checkpoint-every", 500)?,
        kill_after: match parsed.option("kill-after") {
            Some(_) => Some(parsed.option_u64("kill-after", 0)?),
            None => None,
        },
        fault_plan: fuzz_fault_plan(parsed)?,
        trace: parsed.option("trace-out").is_some(),
        ..Default::default()
    };
    Ok(config)
}

/// Writes the `--trace-out` / `--metrics-out` artifacts of a fuzz run.
/// Metrics are serialized with deterministic entries only, so the file is
/// byte-identical across repeated runs and worker counts at a fixed seed.
fn write_fuzz_outputs(
    parsed: &Parsed,
    trace: Option<&embsan_obs::MergedTrace>,
    snapshot: &embsan_obs::MetricsSnapshot,
    meta: &[(&str, &str)],
) -> Result<(), String> {
    if let Some(path) = parsed.option("trace-out") {
        let trace = trace.ok_or("no event trace was collected")?;
        fs::write(path, trace.to_jsonl(meta)).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}: {} events", trace.event_count());
    }
    if let Some(path) = parsed.option("metrics-out") {
        fs::write(path, snapshot.to_json(false))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn print_supervised(outcome: &embsan_fuzz::SupervisedOutcome) {
    let stats = &outcome.stats;
    println!(
        "execs {}  corpus {}  coverage {}  findings {}",
        stats.execs, stats.corpus, stats.coverage, stats.findings
    );
    let health = &outcome.health;
    println!(
        "health: wedges {}  recoveries {}  quarantined {}  transient-retries {}  \
         wfi-hangs {}  checkpoints {}",
        health.wedges,
        health.recoveries,
        health.quarantined,
        health.transient_retries,
        health.wfi_hangs,
        health.checkpoints
    );
    let inj = &outcome.injection;
    if inj.total() > 0 {
        println!(
            "faults injected: {} (ram-bit-flips {}  mmio {}  irqs {}  alloc-fail {}  wedges {})",
            inj.total(),
            inj.ram_bit_flips,
            inj.mmio_corruptions,
            inj.spurious_irqs,
            inj.alloc_failures,
            inj.cpu_wedges
        );
    }
    if !outcome.completed {
        println!(
            "stopped early at iteration {} (resume with `embsan fuzz --resume <journal>`)",
            outcome.iterations_done
        );
    }
    for finding in &outcome.findings {
        println!(
            "[{}] pc={:#010x} reproducer calls {:?}",
            finding.report.class,
            finding.report.pc,
            finding.program.calls.iter().map(|c| c.nr).collect::<Vec<_>>()
        );
    }
}

fn cmd_fuzz(parsed: &Parsed) -> Result<(), String> {
    if parsed.option("resume").is_some() {
        return cmd_fuzz_resume(parsed);
    }
    let workers_flag = parsed.option("workers").is_some();
    let workers = parsed.option_u64("workers", 1)? as usize;
    if workers_flag && workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    let supervised = parsed.option("journal").is_some()
        || parsed.option("fault-plan").is_some()
        || parsed.option("kill-after").is_some()
        || parsed.flags.iter().any(|f| f == "supervised");
    if supervised {
        let mut degraded = Vec::new();
        if workers > 1 {
            // The journaled path's contract is bit-identical single-thread
            // replay; --workers composes by falling back, not by changing
            // the journal format.
            degraded.push(warn_degraded(
                "supervised",
                "workers_ignored",
                workers as u64,
                format!(
                    "supervised/journaled runs are single-thread; ignoring --workers {workers}"
                ),
            ));
        }
        cmd_fuzz_supervised(parsed, degraded)
    } else if workers_flag {
        // An explicit --workers always uses the parallel engine — including
        // --workers 1 — so results are comparable across every worker count.
        cmd_fuzz_parallel(parsed, workers)
    } else if parsed.option("trace-out").is_some() {
        // Merged per-iteration traces come from the supervised loop; a
        // traced plain run is a supervised run with the default policy.
        cmd_fuzz_supervised(parsed, Vec::new())
    } else {
        cmd_fuzz_plain(parsed)
    }
}

/// Emits a degraded-mode warning as a structured `embsan-trace-v1` event
/// on stderr and returns the matching Telemetry-class metric entry for
/// the run's snapshot (excluded from `--metrics-out`, which keeps only
/// deterministic entries — a degraded run still writes identical files).
fn warn_degraded(
    component: &'static str,
    metric: &'static str,
    count: u64,
    detail: String,
) -> embsan_obs::MetricEntry {
    use embsan_obs::{EventKind, TraceConfig, Tracer};
    let tracer = Tracer::new(TraceConfig { capacity: 4, ..TraceConfig::deterministic() });
    tracer.record(EventKind::DegradedMode { component, detail });
    for event in tracer.drain() {
        eprintln!("{}", event.to_jsonl(None));
    }
    embsan_obs::MetricEntry {
        subsystem: "cli".to_string(),
        name: metric.to_string(),
        class: embsan_obs::MetricClass::Telemetry,
        value: embsan_obs::MetricValue::Counter(count),
    }
}

fn cmd_fuzz_parallel(parsed: &Parsed, workers: usize) -> Result<(), String> {
    use embsan_fuzz::{
        run_parallel_directed, CampaignConfig, CampaignError, Dictionary, ParallelConfig, Strategy,
    };
    let image = load_image(parsed)?;
    let mode = probe_mode(parsed, &image)?;
    let artifacts = probe(&image, mode, None).map_err(|e| e.to_string())?;
    let specs = embsan_core::reference_specs().map_err(|e| e.to_string())?;
    let cpus = parsed.option_u64("cpus", 1)? as usize;
    let ready_budget = parsed.option_u64("budget", 400_000_000)?;
    let (model_free, mmio_withheld) = mmio_model_free(parsed)?;
    let config = ParallelConfig {
        workers,
        epoch_len: parsed.option_u64("epoch", 64)?,
        campaign: CampaignConfig {
            iterations: parsed.option_u64("iters", 5_000)?,
            seed: parsed.option_u64("seed", 0xE1B)?,
            ready_budget,
            model_free,
            mmio_withheld,
            ..CampaignConfig::default()
        },
        trace: parsed.option("trace-out").is_some(),
        ..ParallelConfig::default()
    };
    let syscall_descs = fuzz_descriptions(parsed)?;
    let dict = Dictionary::extract(&image);
    let direction = fuzz_direction(parsed, &image)?;
    println!(
        "parallel fuzzing: {} iterations, seed {}, {} workers, epoch {}, dictionary {} entries",
        config.campaign.iterations,
        config.campaign.seed,
        workers,
        config.epoch_len,
        dict.len()
    );
    let factory = |_worker: usize| -> Result<Session, CampaignError> {
        let mut session =
            Session::with_cpus(&image, &specs, &artifacts, cpus).map_err(CampaignError::from)?;
        if let Some((base, size)) = model_free {
            session.enable_model_free(base, size, mmio_withheld);
        }
        session.run_to_ready(ready_budget).map_err(CampaignError::from)?;
        Ok(session)
    };
    let outcome = run_parallel_directed(
        factory,
        &syscall_descs,
        &dict,
        Strategy::Tardis,
        direction.as_ref(),
        &config,
    )
    .map_err(|e| e.to_string())?;
    let stats = &outcome.stats;
    println!(
        "execs {}  corpus {}  coverage {}  findings {}",
        stats.execs, stats.corpus, stats.coverage, stats.findings
    );
    if let Some((min, mean)) = stats.frontier {
        println!("frontier: min {min} mean {mean} milli-edges to target");
    }
    println!(
        "wall {:.2}s ({:.0} execs/sec)  epochs {}  cache: {} translations, {} hits, \
         {} generation reuses",
        stats.fuzz_wall.as_secs_f64(),
        stats.execs as f64 / stats.fuzz_wall.as_secs_f64().max(f64::EPSILON),
        stats.epochs,
        stats.cache.translations,
        stats.cache.hits,
        stats.cache.generation_hits
    );
    for finding in &outcome.findings {
        println!(
            "[{}] pc={:#010x} reproducer calls {:?}",
            finding.report.class,
            finding.report.pc,
            finding.program.calls.iter().map(|c| c.nr).collect::<Vec<_>>()
        );
    }
    // No worker count in the meta: the trace and deterministic metrics are
    // byte-identical for every worker count, and the header must be too.
    let seed = config.campaign.seed.to_string();
    let iters = config.campaign.iterations.to_string();
    let meta = [("engine", "parallel"), ("seed", seed.as_str()), ("iterations", iters.as_str())];
    write_fuzz_outputs(parsed, outcome.trace.as_ref(), &outcome.stats.metrics_snapshot(), &meta)
}

fn cmd_bench(parsed: &Parsed) -> Result<(), String> {
    use embsan_bench::{measure_firmware_throughput, ThroughputReport};
    use embsan_fuzz::CampaignConfig;
    let name = parsed.positional.first().map_or("TP-Link WDR-7660", String::as_str);
    let spec = embsan_guestos::firmware_by_name(name)
        .ok_or_else(|| format!("unknown firmware `{name}` (see `embsan bench --help`)"))?;
    let workers = parsed.option_u64("workers", 2)? as usize;
    let campaign = CampaignConfig {
        iterations: parsed.option_u64("iters", 400)?,
        seed: parsed.option_u64("seed", 17)?,
        ..CampaignConfig::default()
    };
    let toggles = parsed.option_u64("toggles", 8)?;
    let worker_counts: Vec<usize> = if workers > 1 { vec![1, workers] } else { vec![1] };
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "bench: {} ({} iterations, seed {}, workers {:?}, {} host cores)",
        spec.name, campaign.iterations, campaign.seed, worker_counts, host_cores
    );
    let fw = measure_firmware_throughput(spec, &campaign, &worker_counts, toggles)
        .map_err(|e| e.to_string())?;
    for point in &fw.points {
        println!(
            "  workers {}: {:.0} execs/sec ({} execs in {:.2}s), {:.2} blocks/exec, \
             coverage {}, findings {}",
            point.workers,
            point.execs_per_sec,
            point.execs,
            point.fuzz_wall_secs,
            point.blocks_per_exec,
            point.coverage,
            point.findings
        );
        println!(
            "    memory: base {} KiB shared by {}/{} workers, peak per-worker overlay {} KiB",
            point.base_bytes / 1024,
            point.workers_sharing_base,
            point.workers,
            point.peak_overlay_bytes.div_ceil(1024),
        );
    }
    let toggle = &fw.cache_toggle;
    println!(
        "  cache generations: {} first-pass translations, {} retranslations over {} \
         config toggles, {} generation reuses",
        toggle.first_pass_translations,
        toggle.retranslations_after_first_pass,
        toggle.toggles,
        toggle.generation_hits
    );
    if fw.points.iter().any(|p| p.execs == 0 || p.execs_per_sec <= 0.0) {
        return Err("zero throughput measured (harness regression)".to_string());
    }
    let report = ThroughputReport {
        host_cores,
        iterations: campaign.iterations,
        seed: campaign.seed,
        peak_rss_bytes: embsan_bench::peak_rss_bytes(),
        firmwares: vec![fw],
    };
    if report.peak_rss_bytes > 0 {
        println!("  peak process RSS: {} MiB", report.peak_rss_bytes / (1024 * 1024));
    }
    for warning in report.warnings() {
        println!(
            "  warning[{}]: {} workers on {} host cores — that point measures host \
             oversubscription, not an engine regression",
            warning.kind, warning.workers, warning.host_cores
        );
    }
    if let Some(path) = parsed.option("json") {
        fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = parsed.option("baseline") {
        let tolerance = parsed.option_u64("max-regression", 25)? as f64 / 100.0;
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline = embsan_bench::parse_baseline(&text)
            .map_err(|e| format!("malformed baseline {path}: {e}"))?;
        let regressions = embsan_bench::regressions(&baseline, &report, tolerance);
        for regression in &regressions {
            println!("  regression: {regression}");
        }
        if !regressions.is_empty() {
            return Err(format!(
                "{} throughput regression(s) beyond {:.0}% vs {path}",
                regressions.len(),
                tolerance * 100.0
            ));
        }
        let memory = embsan_bench::memory_regressions(&baseline, &report);
        for line in &memory {
            println!("  memory regression: {line}");
        }
        if !memory.is_empty() {
            return Err(format!("{} per-worker memory regression(s) vs {path}", memory.len()));
        }
        println!("  baseline check: no point more than {:.0}% below {path}", tolerance * 100.0);
    }
    Ok(())
}

fn cmd_fuzz_plain(parsed: &Parsed) -> Result<(), String> {
    use embsan_fuzz::{Dictionary, Fuzzer, FuzzerConfig, Strategy};
    let (mut session, image) = ready_session(parsed)?;
    let iters = parsed.option_u64("iters", 5_000)?;
    let seed = parsed.option_u64("seed", 0xE1B)?;
    let syscall_descs = fuzz_descriptions(parsed)?;
    let dict = Dictionary::extract(&image);
    println!("fuzzing: {iters} iterations, seed {seed}, dictionary {} entries", dict.len());
    let direction = fuzz_direction(parsed, &image)?;
    let config = FuzzerConfig::new(Strategy::Tardis, seed);
    let mut fuzzer = Fuzzer::new(&mut session, syscall_descs, dict, config);
    if let Some(direction) = direction {
        fuzzer.set_direction(direction);
    }
    fuzzer.run(iters).map_err(|e| e.to_string())?;
    let stats = fuzzer.stats();
    println!(
        "execs {}  corpus {}  coverage {}  findings {}",
        stats.execs, stats.corpus, stats.coverage, stats.findings
    );
    if let Some((min, mean)) = fuzzer.frontier_distance() {
        println!("frontier: min {min} mean {mean} milli-edges to target");
    }
    let findings = fuzzer.into_findings();
    for finding in &findings {
        println!(
            "[{}] pc={:#010x} reproducer calls {:?}",
            finding.report.class,
            finding.report.pc,
            finding.program.calls.iter().map(|c| c.nr).collect::<Vec<_>>()
        );
    }
    write_fuzz_outputs(parsed, None, &session.metrics_snapshot(), &[])
}

fn cmd_fuzz_supervised(
    parsed: &Parsed,
    mut degraded: Vec<embsan_obs::MetricEntry>,
) -> Result<(), String> {
    use embsan_fuzz::{run_supervised_session, Dictionary, Journal, StartInfo, Strategy};
    if parsed.option("analysis").is_some() {
        // The journal format carries no scores; directed scheduling would
        // not survive a resume bit-identically, so the supervised path
        // stays undirected.
        degraded.push(warn_degraded(
            "supervised",
            "analysis_ignored",
            1,
            "supervised/journaled runs are undirected; ignoring --analysis".to_string(),
        ));
    }
    let image_path = parsed.positional.first().ok_or("expected an image path")?.clone();
    let (mut session, image) = ready_session(parsed)?;
    let mut config = fuzz_supervisor_config(parsed)?;
    let (model_free, mmio_withheld) = mmio_model_free(parsed)?;
    // Keep the supervisor's campaign view coherent with the live session
    // (ready_session already enabled the region before boot).
    config.campaign.model_free = model_free;
    config.campaign.mmio_withheld = mmio_withheld;
    let start = StartInfo {
        firmware: image_path,
        strategy: Strategy::Tardis,
        seed: parsed.option_u64("seed", 0xE1B)?,
        iterations: parsed.option_u64("iters", 5_000)?,
        ready_budget: parsed.option_u64("budget", 400_000_000)?,
        program_budget: 3_000_000,
        checkpoint_interval: config.checkpoint_interval,
        // Stamped with the live session's hash by the supervised span.
        base_hash: 0,
        model_free,
        mmio_withheld,
    };
    let syscall_descs = fuzz_descriptions(parsed)?;
    let dict = Dictionary::extract(&image);
    let mut journal = match parsed.option("journal") {
        Some(path) => {
            Some(Journal::create(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    println!(
        "supervised fuzzing: {} iterations, seed {}, dictionary {} entries{}",
        start.iterations,
        start.seed,
        dict.len(),
        if config.fault_plan.is_some() { ", fault plan armed" } else { "" }
    );
    let seed = start.seed.to_string();
    let iters = start.iterations.to_string();
    let outcome = run_supervised_session(
        &mut session,
        syscall_descs,
        dict,
        &config,
        start,
        None,
        journal.as_mut(),
    )
    .map_err(|e| e.to_string())?;
    print_supervised(&outcome);
    let mut snapshot = outcome.metrics_snapshot();
    snapshot.entries.extend(degraded);
    snapshot.entries.sort_by(|a, b| (&a.subsystem, &a.name).cmp(&(&b.subsystem, &b.name)));
    let meta = [("engine", "supervised"), ("seed", seed.as_str()), ("iterations", iters.as_str())];
    write_fuzz_outputs(parsed, outcome.trace.as_ref(), &snapshot, &meta)
}

fn cmd_fuzz_resume(parsed: &Parsed) -> Result<(), String> {
    use embsan_fuzz::{run_supervised_session, CampaignConfig, Dictionary, Journal};
    let journal_path = parsed.option("resume").ok_or("expected --resume <journal>")?;
    let loaded = Journal::load(std::path::Path::new(journal_path)).map_err(|e| e.to_string())?;
    let start = loaded.start().map_err(|e| e.to_string())?.clone();
    if loaded.ended() {
        return Err(format!("{journal_path}: campaign already completed"));
    }
    // The journal's Start record names the image the campaign was fuzzing;
    // the session is re-prepared from it exactly as `run_supervised_session`
    // left it (probe mode and syscall count must match the original
    // invocation — both default deterministically).
    let image_path = &start.firmware;
    let bytes = fs::read(image_path).map_err(|e| format!("cannot read {image_path}: {e}"))?;
    let image = FirmwareImage::parse(&bytes).map_err(|e| format!("{image_path}: {e}"))?;
    let mode = probe_mode(parsed, &image)?;
    let artifacts = probe(&image, mode, None).map_err(|e| e.to_string())?;
    let specs = embsan_core::reference_specs().map_err(|e| e.to_string())?;
    let cpus = parsed.option_u64("cpus", 1)? as usize;
    let mut session =
        Session::with_cpus(&image, &specs, &artifacts, cpus).map_err(|e| e.to_string())?;
    if let Some((base, size)) = start.model_free {
        // Replaying a model-free campaign requires the same refinement
        // configuration the journal was recorded under.
        session.enable_model_free(base, size, start.mmio_withheld);
    }
    session.run_to_ready(start.ready_budget).map_err(|e| e.to_string())?;

    let mut config = fuzz_supervisor_config(parsed)?;
    config.campaign = CampaignConfig {
        iterations: start.iterations,
        seed: start.seed,
        ready_budget: start.ready_budget,
        program_budget: start.program_budget,
        model_free: start.model_free,
        mmio_withheld: start.mmio_withheld,
    };
    config.checkpoint_interval = start.checkpoint_interval;
    let resume = embsan_fuzz::ResumePoint::from_journal(&loaded);
    let resumed_at = resume.state.as_ref().map_or(0, |_| resume.iteration);
    let mut journal = Journal::reopen(std::path::Path::new(journal_path), loaded.valid_len)
        .map_err(|e| format!("{journal_path}: {e}"))?;
    let syscall_descs = fuzz_descriptions(parsed)?;
    let dict = Dictionary::extract(&image);
    println!(
        "resuming: {} at iteration {resumed_at}/{} (journal {journal_path}{})",
        start.firmware,
        start.iterations,
        if loaded.truncated { ", torn tail discarded" } else { "" }
    );
    let seed = start.seed.to_string();
    let iters = start.iterations.to_string();
    let outcome = run_supervised_session(
        &mut session,
        syscall_descs,
        dict,
        &config,
        start,
        Some(resume),
        Some(&mut journal),
    )
    .map_err(|e| e.to_string())?;
    print_supervised(&outcome);
    let meta = [("engine", "supervised"), ("seed", seed.as_str()), ("iterations", iters.as_str())];
    write_fuzz_outputs(parsed, outcome.trace.as_ref(), &outcome.metrics_snapshot(), &meta)
}

#[cfg(unix)]
fn cmd_serve(parsed: &Parsed) -> Result<(), String> {
    use embsan_serve::{DaemonConfig, ServeConfig, ServeEngine};
    let state_dir = parsed.option("state-dir").ok_or("expected --state-dir <dir>")?;
    let socket = parsed.option("socket").ok_or("expected --socket <path>")?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        state_dir: std::path::PathBuf::from(state_dir),
        workers: parsed.option_u64("workers", defaults.workers as u64)? as usize,
        slice: parsed.option_u64("slice", defaults.slice)?,
        max_active: parsed.option_u64("max-active", defaults.max_active as u64)? as usize,
        max_queued: parsed.option_u64("max-queued", defaults.max_queued as u64)? as usize,
        max_strikes: parsed.option_u64("max-strikes", u64::from(defaults.max_strikes))? as u32,
        turn_timeout_ms: parsed.option_u64("turn-timeout-ms", defaults.turn_timeout_ms)?,
        trace: parsed.flags.iter().any(|f| f == "trace"),
        ..defaults
    };
    let daemon = DaemonConfig {
        socket: std::path::PathBuf::from(socket),
        await_jobs: match parsed.option("await-jobs") {
            Some(_) => Some(parsed.option_u64("await-jobs", 0)?),
            None => None,
        },
        report_path: parsed.option("report").map(std::path::PathBuf::from),
    };
    let engine = ServeEngine::open(config)?;
    let queued =
        engine.jobs_status().iter().filter(|(_, _, phase, _)| !phase.is_terminal()).count();
    println!("serve: listening on {socket} (state {state_dir}, {queued} job(s) resumable)");
    embsan_serve::run_daemon(engine, &daemon, &mut std::io::stderr())
}

#[cfg(unix)]
fn cmd_submit(parsed: &Parsed) -> Result<(), String> {
    use embsan_serve::protocol::escape_json;
    let socket = parsed.option("socket").ok_or("expected --socket <path>")?;
    let firmware = parsed.option("firmware").ok_or("expected --firmware <name>")?;
    let iterations = parsed.option_u64("iters", 400)?;
    let seed = parsed.option_u64("seed", 17)?;
    let priority = parsed.option_u64("priority", 0)?;
    if priority > u64::from(u8::MAX) {
        return Err("--priority must be 0-255".to_string());
    }
    let drill = match parsed.option("drill") {
        Some(text) => {
            // Validate locally so a typo is reported before the daemon sees it.
            embsan_serve::Drill::parse(text)?;
            format!(",\"drill\":\"{text}\"")
        }
        None => String::new(),
    };
    let line = format!(
        "{{\"cmd\":\"submit\",\"firmware\":\"{}\",\"iterations\":{iterations},\
         \"seed\":{seed},\"priority\":{priority}{drill}}}",
        escape_json(firmware)
    );
    let response = embsan_serve::request(std::path::Path::new(socket), &line)?;
    println!("{response}");
    Ok(())
}

#[cfg(unix)]
fn cmd_jobs(parsed: &Parsed) -> Result<(), String> {
    let socket = parsed.option("socket").ok_or("expected --socket <path>")?;
    let action = parsed.positional.first().map_or("jobs", String::as_str);
    if !matches!(action, "jobs" | "findings" | "report" | "ping" | "shutdown") {
        return Err(format!("unknown action `{action}` (try `embsan help`)"));
    }
    let response =
        embsan_serve::request(std::path::Path::new(socket), &format!("{{\"cmd\":\"{action}\"}}"))?;
    println!("{response}");
    Ok(())
}

#[cfg(not(unix))]
fn cmd_serve(_parsed: &Parsed) -> Result<(), String> {
    Err("`embsan serve` needs Unix domain sockets".to_string())
}

#[cfg(not(unix))]
fn cmd_submit(_parsed: &Parsed) -> Result<(), String> {
    Err("`embsan submit` needs Unix domain sockets".to_string())
}

#[cfg(not(unix))]
fn cmd_jobs(_parsed: &Parsed) -> Result<(), String> {
    Err("`embsan jobs` needs Unix domain sockets".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_specs_parse() {
        let bug = parse_bug("drivers/net:uaf").unwrap();
        assert_eq!(bug.location, "drivers/net");
        assert_eq!(bug.kind, BugKind::Uaf);
        // Locations may contain colons only before the last one.
        assert!(parse_bug("nokind").is_err());
        assert!(parse_bug("x:mystery").is_err());
    }

    #[test]
    fn calls_parse() {
        assert_eq!(parse_call("2:64,0").unwrap(), (2, vec![64, 0]));
        assert_eq!(parse_call("0").unwrap(), (0, vec![]));
        assert_eq!(parse_call("16:0xAB12").unwrap(), (16, vec![0xAB12]));
        assert!(parse_call("x:1").is_err());
        assert!(parse_call("1:y").is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        let err = dispatch(&["bogus".to_string()]).unwrap_err();
        assert!(err.contains("bogus"));
    }

    #[test]
    fn help_prints() {
        dispatch(&[]).unwrap();
        dispatch(&["help".to_string()]).unwrap();
    }
}
