//! Job specifications and the durable job manifest.
//!
//! The daemon's unit of work is a *job*: one supervised campaign against a
//! named firmware. Job identity and configuration live in an append-only
//! line-JSON manifest under the state directory, so a killed daemon can
//! re-derive its entire queue on restart — the per-job journals then say
//! how far each campaign got.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};

use embsan_fuzz::{retry_io, RetryPolicy};

use crate::protocol::{escape_json, parse_json, Value};

/// A deterministic resilience drill attached to a job. Drills let tests
/// and soak runs exercise the daemon's failure paths on demand: the drill
/// fires at an exact iteration, so a drilled run is as reproducible as a
/// healthy one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drill {
    /// Panic inside the worker turn once the job has completed this many
    /// iterations (exercises quarantine of crashing jobs).
    PanicAfter(u64),
    /// Wedge (sleep past the scheduler's turn timeout) once the job has
    /// completed this many iterations (exercises hang quarantine).
    WedgeAt(u64),
}

impl Drill {
    /// Parses the wire syntax `panic-after:N` / `wedge-at:N`.
    ///
    /// # Errors
    ///
    /// A message suitable for a protocol error response.
    pub fn parse(text: &str) -> Result<Drill, String> {
        let (kind, num) =
            text.split_once(':').ok_or_else(|| format!("drill `{text}`: expected `kind:N`"))?;
        let at = num.parse::<u64>().map_err(|_| format!("drill `{text}`: bad iteration"))?;
        match kind {
            "panic-after" => Ok(Drill::PanicAfter(at)),
            "wedge-at" => Ok(Drill::WedgeAt(at)),
            other => Err(format!("unknown drill kind `{other}`")),
        }
    }

    /// The iteration the drill fires at.
    pub fn at(&self) -> u64 {
        match self {
            Drill::PanicAfter(at) | Drill::WedgeAt(at) => *at,
        }
    }
}

impl fmt::Display for Drill {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drill::PanicAfter(at) => write!(f, "panic-after:{at}"),
            Drill::WedgeAt(at) => write!(f, "wedge-at:{at}"),
        }
    }
}

/// A job's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting for a worker slot.
    Queued,
    /// Currently assigned to a worker.
    Running,
    /// Runnable but shed under queue pressure (graceful degradation);
    /// resumes automatically when load drops.
    Parked,
    /// Ran to completion; results recovered from its journal.
    Completed,
    /// Crashed or wedged `max_strikes` times; its journaled state is kept
    /// but it is never scheduled again and its findings leave the store.
    Quarantined,
}

impl JobPhase {
    /// Stable lowercase name (protocol + trace events).
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Parked => "parked",
            JobPhase::Completed => "completed",
            JobPhase::Quarantined => "quarantined",
        }
    }

    /// Whether the phase is terminal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobPhase::Completed | JobPhase::Quarantined)
    }
}

/// One submitted campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Daemon-assigned id (monotonic across restarts via the manifest).
    pub id: u64,
    /// Firmware spec name ([`embsan_guestos::firmware_by_name`]).
    pub firmware: String,
    /// Campaign iterations.
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Scheduling priority: higher runs first and is shed last.
    pub priority: u8,
    /// Optional resilience drill.
    pub drill: Option<Drill>,
}

impl JobSpec {
    /// The job's journal path under `state_dir`.
    pub fn journal_path(&self, state_dir: &Path) -> PathBuf {
        state_dir.join(format!("job-{:04}.journal", self.id))
    }

    /// One manifest line (no trailing newline).
    pub fn to_json(&self) -> String {
        let drill = match &self.drill {
            Some(drill) => format!(",\"drill\":\"{drill}\""),
            None => String::new(),
        };
        format!(
            "{{\"id\":{},\"firmware\":\"{}\",\"iterations\":{},\"seed\":{},\"priority\":{}{}}}",
            self.id,
            escape_json(&self.firmware),
            self.iterations,
            self.seed,
            self.priority,
            drill,
        )
    }

    /// Parses one manifest line.
    ///
    /// # Errors
    ///
    /// A message naming the missing or malformed field.
    pub fn from_json(line: &str) -> Result<JobSpec, String> {
        let value = parse_json(line)?;
        let obj = value.as_obj().ok_or("manifest line must be an object")?;
        let field = |name: &str| obj.get(name).and_then(Value::as_u64);
        let drill = match obj.get("drill") {
            None | Some(Value::Null) => None,
            Some(value) => Some(Drill::parse(value.as_str().ok_or("`drill` must be a string")?)?),
        };
        Ok(JobSpec {
            id: field("id").ok_or("missing `id`")?,
            firmware: obj
                .get("firmware")
                .and_then(Value::as_str)
                .ok_or("missing `firmware`")?
                .to_string(),
            iterations: field("iterations").ok_or("missing `iterations`")?,
            seed: field("seed").ok_or("missing `seed`")?,
            priority: field("priority").unwrap_or(0).min(u64::from(u8::MAX)) as u8,
            drill,
        })
    }
}

/// The manifest filename under the state directory.
pub const MANIFEST: &str = "jobs.manifest";

/// Appends one job to the manifest, flushing before returning. Returns
/// the transient-IO retries absorbed (telemetry).
///
/// # Errors
///
/// Propagates filesystem errors once retries are exhausted.
pub fn append_manifest(
    state_dir: &Path,
    spec: &JobSpec,
    policy: RetryPolicy,
) -> std::io::Result<u32> {
    let path = state_dir.join(MANIFEST);
    let line = format!("{}\n", spec.to_json());
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let (result, retries) = retry_io(policy, || {
        file.write_all(line.as_bytes())?;
        file.flush()
    });
    result?;
    Ok(retries)
}

/// Truncates a torn final line (daemon killed mid-append) so later
/// appends start on a clean line boundary. Call once on daemon restart
/// before the first [`append_manifest`].
///
/// # Errors
///
/// Propagates filesystem errors other than not-found.
pub fn repair_manifest(state_dir: &Path) -> std::io::Result<()> {
    let path = state_dir.join(MANIFEST);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(err) => return Err(err),
    };
    let intact = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |pos| pos + 1);
    if intact < bytes.len() {
        OpenOptions::new().write(true).open(&path)?.set_len(intact as u64)?;
    }
    Ok(())
}

/// Loads every intact job from the manifest, in submission order. A
/// missing manifest is an empty queue; a torn final line (daemon killed
/// mid-append) is dropped — by the write ordering, a job whose manifest
/// line is torn was never acknowledged to the client, so dropping it is
/// correct, not lossy.
///
/// # Errors
///
/// Propagates filesystem errors other than not-found; malformed *intact*
/// lines are structural corruption and reported with their line number.
pub fn load_manifest(state_dir: &Path) -> Result<Vec<JobSpec>, String> {
    let path = state_dir.join(MANIFEST);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(format!("manifest read: {err}")),
    };
    let complete = match text.rfind('\n') {
        Some(pos) => &text[..pos],
        // No newline at all: a single torn line.
        None => return Ok(Vec::new()),
    };
    let mut jobs = Vec::new();
    for (index, line) in complete.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let spec = JobSpec::from_json(line)
            .map_err(|err| format!("manifest line {}: {err}", index + 1))?;
        jobs.push(spec);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, drill: Option<Drill>) -> JobSpec {
        JobSpec {
            id,
            firmware: "TP-Link WDR-7660".to_string(),
            iterations: 400,
            seed: 7,
            priority: 2,
            drill,
        }
    }

    #[test]
    fn drill_syntax_roundtrips() {
        for drill in [Drill::PanicAfter(100), Drill::WedgeAt(3)] {
            assert_eq!(Drill::parse(&drill.to_string()), Ok(drill));
        }
        assert!(Drill::parse("panic-after").is_err());
        assert!(Drill::parse("explode:4").is_err());
        assert!(Drill::parse("wedge-at:x").is_err());
    }

    #[test]
    fn specs_roundtrip_through_manifest_lines() {
        for spec in [sample(0, None), sample(3, Some(Drill::WedgeAt(40)))] {
            assert_eq!(JobSpec::from_json(&spec.to_json()), Ok(spec));
        }
    }

    #[test]
    fn manifest_survives_torn_tail() {
        let dir =
            std::env::temp_dir().join(format!("embsan-serve-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let policy = RetryPolicy::none();
        append_manifest(&dir, &sample(0, None), policy).unwrap();
        append_manifest(&dir, &sample(1, Some(Drill::PanicAfter(10))), policy).unwrap();
        // Tear the tail mid-line, as a kill -9 during append would.
        let path = dir.join(MANIFEST);
        let mut bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len() - 7;
        bytes.truncate(keep);
        std::fs::write(&path, &bytes).unwrap();
        let jobs = load_manifest(&dir).unwrap();
        assert_eq!(jobs, vec![sample(0, None)]);
        // Restart path: repair truncates the torn tail, after which appends
        // land on a clean line boundary again.
        repair_manifest(&dir).unwrap();
        append_manifest(&dir, &sample(1, Some(Drill::PanicAfter(10))), policy).unwrap();
        let jobs = load_manifest(&dir).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[1].drill, Some(Drill::PanicAfter(10)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
