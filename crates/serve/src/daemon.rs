//! The daemon front-end: line-delimited JSON over a Unix socket.
//!
//! Deliberately async-free: one accept loop interleaves connection
//! handling with engine scheduling rounds. Requests are short (submit /
//! status / report), campaign work happens on the engine's worker pool,
//! and a scheduling round bounds how long a client waits — the daemon is
//! a thin, restartable shell around [`ServeEngine`]'s durable state.
//! Transient accept errors are absorbed by the same bounded
//! retry/backoff policy the journal uses.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use embsan_fuzz::{backoff_delay_ms, is_transient_io, RetryPolicy};
use embsan_obs::EventKind;

use crate::engine::ServeEngine;
use crate::protocol::{error_response, escape_json, ok_response, parse_request, Request};

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path (a stale file is replaced on startup).
    pub socket: PathBuf,
    /// Exit once this many jobs are terminal (scripted soak runs / CI).
    /// `None` runs until a `shutdown` request.
    pub await_jobs: Option<u64>,
    /// Write the deterministic report here on exit.
    pub report_path: Option<PathBuf>,
}

/// How long a client connection may idle before the daemon returns to
/// scheduling work.
const READ_TIMEOUT_MS: u64 = 250;

/// Idle sleep when there is neither work nor traffic.
const IDLE_SLEEP_MS: u64 = 20;

/// Runs the daemon loop: accept requests, interleave engine scheduling
/// rounds, stream daemon trace events to `log` as `embsan-trace-v1`
/// JSONL. Returns when a `shutdown` request arrives or the `await_jobs`
/// bound is reached; jobs keep their journals either way, so a later
/// start resumes them.
///
/// # Errors
///
/// Socket bind/permission failures and report-write failures. Per-client
/// IO errors are absorbed (the client is dropped, the daemon lives on).
pub fn run_daemon(
    mut engine: ServeEngine,
    config: &DaemonConfig,
    log: &mut dyn Write,
) -> Result<(), String> {
    if config.socket.exists() {
        std::fs::remove_file(&config.socket)
            .map_err(|e| format!("stale socket {}: {e}", config.socket.display()))?;
    }
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| format!("bind {}: {e}", config.socket.display()))?;
    listener.set_nonblocking(true).map_err(|e| format!("socket nonblocking: {e}"))?;
    let policy = RetryPolicy::default();
    let mut accept_retries: u32 = 0;
    let mut shutdown = false;
    while !shutdown {
        // 1. Serve any waiting client (non-blocking accept, bounded
        //    retry/backoff on transient failures).
        match listener.accept() {
            Ok((stream, _)) => {
                accept_retries = 0;
                shutdown = serve_client(&mut engine, stream);
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(err) if is_transient_io(err.kind()) && accept_retries < policy.max_retries => {
                accept_retries += 1;
                engine.tracer().record(EventKind::RetryBackoff {
                    op: "socket-accept",
                    attempt: accept_retries,
                });
                std::thread::sleep(Duration::from_millis(backoff_delay_ms(
                    policy.base_delay_ms,
                    accept_retries,
                )));
            }
            Err(err) => return Err(format!("accept: {err}")),
        }
        // 2. One scheduling round (blocks at most one turn).
        let busy = engine.step();
        // 3. Stream daemon events.
        for event in engine.drain_events() {
            let _ = writeln!(log, "{}", event.to_jsonl(None));
        }
        // 4. Scripted exit for soak runs.
        if let Some(goal) = config.await_jobs {
            let terminal =
                engine.jobs_status().iter().filter(|(_, _, phase, _)| phase.is_terminal()).count();
            if terminal as u64 >= goal {
                break;
            }
        }
        if !busy {
            std::thread::sleep(Duration::from_millis(IDLE_SLEEP_MS));
        }
    }
    if let Some(path) = &config.report_path {
        std::fs::write(path, engine.report_json())
            .map_err(|e| format!("report {}: {e}", path.display()))?;
    }
    engine.shutdown();
    let _ = std::fs::remove_file(&config.socket);
    Ok(())
}

/// Handles one client connection: one request line → one response line,
/// until EOF, timeout, or a `shutdown` request (returned as `true`).
fn serve_client(engine: &mut ServeEngine, stream: UnixStream) -> bool {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(READ_TIMEOUT_MS)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return false,
            Ok(_) => {}
            Err(_) => return false,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = match parse_request(line.trim()) {
            Ok(request) => handle_request(engine, request),
            Err(message) => (error_response(&message), false),
        };
        let stream = reader.get_mut();
        if stream
            .write_all(response.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush())
            .is_err()
        {
            return false;
        }
        if shutdown {
            return true;
        }
    }
}

fn handle_request(engine: &mut ServeEngine, request: Request) -> (String, bool) {
    match request {
        Request::Ping => (ok_response(&["\"pong\":true".to_string()]), false),
        Request::Submit { firmware, iterations, seed, priority, drill } => {
            let priority = priority.min(u64::from(u8::MAX)) as u8;
            match engine.submit(&firmware, iterations, seed, priority, drill) {
                Ok(id) => (ok_response(&[format!("\"id\":{id}")]), false),
                Err(message) => (error_response(&message), false),
            }
        }
        Request::Jobs => {
            let mut jobs = String::from("\"jobs\":[");
            for (index, (id, firmware, phase, turns)) in
                engine.jobs_status().into_iter().enumerate()
            {
                if index > 0 {
                    jobs.push(',');
                }
                jobs.push_str(&format!(
                    "{{\"id\":{id},\"firmware\":\"{}\",\"phase\":\"{}\",\"turns\":{turns}}}",
                    escape_json(&firmware),
                    phase.name(),
                ));
            }
            jobs.push(']');
            (ok_response(&[jobs]), false)
        }
        Request::Findings => {
            (ok_response(&[format!("\"store\":{}", engine.store().to_json())]), false)
        }
        Request::Report => (ok_response(&[format!("\"report\":{}", engine.report_json())]), false),
        Request::Shutdown => (ok_response(&[]), true),
    }
}

/// Sends one request line to a daemon and returns its response line
/// (used by `embsan submit` / `embsan jobs`).
///
/// # Errors
///
/// Connection or IO failure, or a missing response.
pub fn request(socket: &Path, line: &str) -> Result<String, String> {
    let mut stream =
        UnixStream::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("socket timeout: {e}"))?;
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err("daemon closed the connection without responding".to_string()),
        Ok(_) => Ok(response.trim_end().to_string()),
        Err(err) => Err(format!("receive: {err}")),
    }
}
