//! The crash-tolerant campaign engine: scheduler + supervision tree.
//!
//! One [`ServeEngine`] owns a bounded worker pool and a durable job queue.
//! Each job is one supervised campaign; the engine runs jobs in
//! **fair-share slices** (a worker executes `slice` iterations of one job,
//! journals a checkpoint, and yields) so many campaigns make even progress
//! through a small pool. All durable state lives in the state directory —
//! the job manifest plus one supervised journal per job — which makes the
//! whole tree restartable: killing the daemon (or any worker) at any
//! instant and reopening the state directory resumes every campaign from
//! its newest checkpoint, bit-identically to a run that was never killed.
//!
//! Failure containment follows a supervision-tree shape:
//!
//! - an iteration that wedges the guest is handled *inside* the worker by
//!   the per-campaign supervisor (watchdog + input quarantine);
//! - a worker turn that panics or exceeds the turn timeout is handled by
//!   the engine: the job takes a strike and is retried from its journal,
//!   and a wedged worker thread is replaced outright;
//! - a job that keeps striking is **quarantined**: never scheduled again,
//!   its journal kept for post-mortem, its findings withdrawn from the
//!   shared store;
//! - under queue pressure the engine degrades gracefully: the
//!   lowest-priority runnable jobs are *parked* (not dropped — their
//!   journaled state is untouched) until load falls, and submissions
//!   beyond the queue bound are rejected with a structured error.
//!
//! Scheduling is intentionally irrelevant to results: jobs own disjoint
//! sessions and journals, so the final report is a pure function of the
//! per-job journals and is byte-identical across any kill/restart
//! schedule.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use embsan_core::session::{BaseImage, Session};
use embsan_fuzz::campaign::prepare_session;
use embsan_fuzz::{
    descriptions_for, retry_io, run_supervised_span, CampaignConfig, Dictionary, Journal,
    ResumePoint, RetryPolicy, StartInfo, Strategy, SupervisorConfig,
};
use embsan_guestos::firmware::Fuzzer as PaperFuzzer;
use embsan_guestos::{firmware_by_name, FirmwareSpec};
use embsan_obs::{
    Event, EventKind, MergedTrace, MetricClass, MetricsRegistry, MetricsSnapshot, TraceConfig,
    TraceSpan, Tracer,
};

use crate::job::{append_manifest, load_manifest, repair_manifest, Drill, JobPhase, JobSpec};
use crate::store::{firmware_identity, FindingsStore, StoreFinding};

/// Engine policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Durable state directory: job manifest, per-job journals, quarantine
    /// markers.
    pub state_dir: PathBuf,
    /// Worker threads (jobs are pinned to workers by `id % workers`).
    pub workers: usize,
    /// Fair-share slice: iterations per worker turn, and the journal
    /// checkpoint cadence (every slice boundary is durable).
    pub slice: u64,
    /// Graceful-degradation bound: at most this many jobs are runnable at
    /// once; the rest are parked lowest-priority-first.
    pub max_active: usize,
    /// Submission bound: `submit` rejects once this many jobs are
    /// non-terminal.
    pub max_queued: usize,
    /// Strikes (panicked or wedged turns) before a job is quarantined.
    pub max_strikes: u32,
    /// Wall-clock bound on one worker turn; a turn exceeding it counts as
    /// wedged and the worker thread is replaced.
    pub turn_timeout_ms: u64,
    /// Boot budget per campaign session, in instructions.
    pub ready_budget: u64,
    /// Per-program budget, in instructions.
    pub program_budget: u64,
    /// Record per-job deterministic session traces
    /// ([`TraceConfig::deterministic`] preset).
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        let campaign = CampaignConfig::default();
        ServeConfig {
            state_dir: PathBuf::from("embsan-serve-state"),
            workers: 2,
            slice: 50,
            max_active: 4,
            max_queued: 32,
            max_strikes: 2,
            turn_timeout_ms: 120_000,
            ready_budget: campaign.ready_budget,
            program_budget: campaign.program_budget,
            trace: false,
        }
    }
}

/// One job's scheduler-side state.
#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    phase: JobPhase,
    /// Fair-share bookkeeping: completed turns.
    turns: u64,
    /// Failed turns (panic / wedge / structural error).
    strikes: u32,
}

/// A worker assignment: run one fair-share turn of `spec`.
struct Assignment {
    token: u64,
    spec: JobSpec,
}

/// What a worker turn produced.
enum Payload {
    /// The slice ran; the campaign is not finished yet.
    Progress(TurnData),
    /// The campaign ran to completion this turn.
    Finished(TurnData),
    /// The turn panicked (the worker survived via `catch_unwind`).
    Panicked,
    /// A structural error (bad firmware, corrupt journal, campaign error).
    Failed(String),
}

/// Result data common to successful turns.
#[derive(Default)]
struct TurnData {
    /// *Cumulative* store findings for the job (the store dedupes, so
    /// resending the full set every turn is idempotent and makes restart
    /// recovery trivial).
    findings: Vec<StoreFinding>,
    /// This slice's deterministic trace spans (empty unless tracing).
    spans: Vec<TraceSpan>,
    /// Transient journal-IO retries absorbed this turn (telemetry).
    retries: u64,
}

struct TurnResult {
    token: u64,
    job: u64,
    payload: Payload,
}

struct Inflight {
    worker: usize,
    job: u64,
    deadline: Instant,
}

struct WorkerHandle {
    sender: Option<Sender<Assignment>>,
    thread: Option<JoinHandle<()>>,
}

/// Deterministic per-job report data, derived from the job's journal.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Iterations covered by the newest durable checkpoint.
    pub iterations: u64,
    /// Guest executions.
    pub execs: u64,
    /// Corpus entries.
    pub corpus: usize,
    /// Nonzero coverage buckets.
    pub coverage: usize,
    /// Deduplicated findings.
    pub findings: usize,
}

/// The campaign daemon engine. See the module docs for the design.
pub struct ServeEngine {
    config: ServeConfig,
    jobs: BTreeMap<u64, JobState>,
    next_id: u64,
    store: FindingsStore,
    tracer: Tracer,
    workers: Vec<WorkerHandle>,
    result_rx: Receiver<TurnResult>,
    result_tx: Sender<TurnResult>,
    inflight: BTreeMap<u64, Inflight>,
    next_token: u64,
    job_traces: BTreeMap<u64, MergedTrace>,
    // Telemetry counters (host-timing dependent; never in deterministic
    // snapshots).
    turns: u64,
    journal_retries: u64,
    manifest_retries: u64,
    workers_replaced: u64,
    park_events: u64,
    /// One ready-point base image per firmware identity, shared by every
    /// job and worker (including replacement workers): N concurrent
    /// campaigns of the same firmware cost one RAM + sanitizer-plane image
    /// plus per-job copy-on-write overlays.
    bases: BaseCache,
}

/// Shared per-firmware base images, keyed by [`firmware_identity`].
type BaseCache = Arc<Mutex<HashMap<u64, Arc<BaseImage>>>>;

impl ServeEngine {
    /// Opens (or creates) the daemon state directory, recovers every job
    /// recorded in the manifest, and starts the worker pool.
    ///
    /// Recovery is journal-driven: a job whose journal carries an `End`
    /// record is `Completed` (its findings re-enter the store from the
    /// final checkpoint); a job with a quarantine marker stays
    /// `Quarantined`; everything else is re-queued and resumes from its
    /// newest checkpoint on its first turn.
    ///
    /// # Errors
    ///
    /// Filesystem failures and structurally corrupt state (manifest or
    /// journal corruption that is not a torn tail).
    pub fn open(config: ServeConfig) -> Result<ServeEngine, String> {
        let config = ServeConfig {
            workers: config.workers.max(1),
            slice: config.slice.max(1),
            max_active: config.max_active.max(1),
            ..config
        };
        std::fs::create_dir_all(&config.state_dir)
            .map_err(|e| format!("state dir {}: {e}", config.state_dir.display()))?;
        repair_manifest(&config.state_dir).map_err(|e| format!("manifest repair: {e}"))?;
        let specs = load_manifest(&config.state_dir)?;
        let (result_tx, result_rx) = channel();
        let mut engine = ServeEngine {
            jobs: BTreeMap::new(),
            next_id: 0,
            store: FindingsStore::new(),
            tracer: Tracer::new(TraceConfig { capacity: 4096, ..TraceConfig::full() }),
            workers: Vec::new(),
            result_rx,
            result_tx,
            inflight: BTreeMap::new(),
            next_token: 0,
            job_traces: BTreeMap::new(),
            turns: 0,
            journal_retries: 0,
            manifest_retries: 0,
            workers_replaced: 0,
            park_events: 0,
            bases: Arc::new(Mutex::new(HashMap::new())),
            config,
        };
        for index in 0..engine.config.workers {
            let worker = spawn_worker(
                index,
                engine.config.clone(),
                engine.result_tx.clone(),
                Arc::clone(&engine.bases),
            );
            engine.workers.push(worker);
        }
        for spec in specs {
            engine.next_id = engine.next_id.max(spec.id + 1);
            engine.recover_job(spec)?;
        }
        Ok(engine)
    }

    fn recover_job(&mut self, spec: JobSpec) -> Result<(), String> {
        let id = spec.id;
        let phase = if quarantine_marker(&self.config.state_dir, id).exists() {
            JobPhase::Quarantined
        } else {
            let path = spec.journal_path(&self.config.state_dir);
            match path.exists() {
                false => JobPhase::Queued,
                true => {
                    let loaded =
                        Journal::load(&path).map_err(|e| format!("job {id} journal: {e}"))?;
                    if loaded.ended() {
                        // Re-feed the store from the final checkpoint: the
                        // completed campaign's full finding set.
                        if let Some(cp) = loaded.last_checkpoint() {
                            let firmware = firmware_identity(&spec.firmware);
                            for finding in &cp.fuzzer.findings {
                                self.store.record(
                                    firmware,
                                    id,
                                    StoreFinding::from_report(&finding.report),
                                );
                            }
                        }
                        JobPhase::Completed
                    } else {
                        JobPhase::Queued
                    }
                }
            }
        };
        self.tracer.record(EventKind::JobLifecycle { job: id, phase: phase.name() });
        self.jobs.insert(id, JobState { spec, phase, turns: 0, strikes: 0 });
        Ok(())
    }

    /// Submits a campaign; returns the job id. The manifest append is
    /// durable before the id is handed back, so an acknowledged job
    /// survives any later kill.
    ///
    /// # Errors
    ///
    /// Unknown firmware, zero iterations, a full queue (graceful
    /// degradation: the daemon sheds new load, never journaled state), or
    /// a manifest write failure.
    pub fn submit(
        &mut self,
        firmware: &str,
        iterations: u64,
        seed: u64,
        priority: u8,
        drill: Option<Drill>,
    ) -> Result<u64, String> {
        firmware_by_name(firmware).ok_or_else(|| format!("unknown firmware `{firmware}`"))?;
        if iterations == 0 {
            return Err("iterations must be positive".to_string());
        }
        let pending = self.jobs.values().filter(|j| !j.phase.is_terminal()).count();
        if pending >= self.config.max_queued {
            self.tracer.record(EventKind::DegradedMode {
                component: "daemon",
                detail: format!("queue full ({pending} pending); rejecting submission"),
            });
            return Err(format!(
                "queue full: {pending} jobs pending (max {})",
                self.config.max_queued
            ));
        }
        let id = self.next_id;
        let spec =
            JobSpec { id, firmware: firmware.to_string(), iterations, seed, priority, drill };
        let retries = append_manifest(&self.config.state_dir, &spec, RetryPolicy::default())
            .map_err(|e| format!("manifest append: {e}"))?;
        if retries > 0 {
            self.manifest_retries += u64::from(retries);
            self.tracer.record(EventKind::RetryBackoff { op: "manifest-append", attempt: retries });
        }
        self.next_id += 1;
        self.tracer.record(EventKind::JobLifecycle { job: id, phase: "queued" });
        self.jobs.insert(id, JobState { spec, phase: JobPhase::Queued, turns: 0, strikes: 0 });
        Ok(id)
    }

    /// One scheduling round: refresh parking, fill free workers, then wait
    /// for (and process) one turn result or turn timeout. Returns whether
    /// any job is still non-terminal.
    pub fn step(&mut self) -> bool {
        if !self.has_pending() && self.inflight.is_empty() {
            return false;
        }
        self.refresh_parking();
        self.dispatch();
        if !self.inflight.is_empty() {
            self.await_one();
        }
        self.has_pending() || !self.inflight.is_empty()
    }

    /// Runs until every job is terminal.
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Processes at most `turns` turn results, then returns (the "kill
    /// point" control for resilience tests: stop consuming after k turns,
    /// drop the engine, reopen the state directory).
    pub fn run_turns(&mut self, turns: u64) -> u64 {
        let start = self.turns;
        while self.turns - start < turns && self.step() {}
        self.turns - start
    }

    /// Stops the engine: drains in-flight turns and joins the pool.
    /// Identical to dropping, but explicit at call sites.
    pub fn shutdown(self) {}

    fn has_pending(&self) -> bool {
        self.jobs.values().any(|j| !j.phase.is_terminal())
    }

    /// Graceful degradation: rank runnable jobs by (priority desc, id asc)
    /// and park everything past `max_active`. Parking is reversible and
    /// touches no durable state.
    fn refresh_parking(&mut self) {
        let mut ids: Vec<u64> =
            self.jobs.iter().filter(|(_, j)| !j.phase.is_terminal()).map(|(id, _)| *id).collect();
        ids.sort_by_key(|id| (std::cmp::Reverse(self.jobs[id].spec.priority), *id));
        for (rank, id) in ids.iter().enumerate() {
            let parked = rank >= self.config.max_active;
            let job = self.jobs.get_mut(id).expect("ranked job exists");
            match (job.phase, parked) {
                (JobPhase::Queued, true) => {
                    job.phase = JobPhase::Parked;
                    self.park_events += 1;
                    self.tracer.record(EventKind::DegradedMode {
                        component: "scheduler",
                        detail: format!("parking job {id} (rank {rank} over active bound)"),
                    });
                    self.tracer.record(EventKind::JobLifecycle { job: *id, phase: "parked" });
                }
                (JobPhase::Parked, false) => {
                    job.phase = JobPhase::Queued;
                    self.tracer.record(EventKind::JobLifecycle { job: *id, phase: "queued" });
                }
                _ => {}
            }
        }
    }

    /// Fills every free worker with its fairest pinned job: fewest turns
    /// first, then highest priority, then lowest id.
    fn dispatch(&mut self) {
        for index in 0..self.workers.len() {
            if self.inflight.values().any(|i| i.worker == index) {
                continue;
            }
            let candidate = self
                .jobs
                .iter()
                .filter(|(id, j)| {
                    j.phase == JobPhase::Queued && (**id as usize) % self.config.workers == index
                })
                .min_by_key(|(id, j)| (j.turns, std::cmp::Reverse(j.spec.priority), **id))
                .map(|(id, j)| (*id, j.spec.clone()));
            let Some((id, spec)) = candidate else { continue };
            let token = self.next_token;
            self.next_token += 1;
            let job = self.jobs.get_mut(&id).expect("candidate exists");
            job.phase = JobPhase::Running;
            self.tracer.record(EventKind::JobLifecycle { job: id, phase: "running" });
            let deadline =
                Instant::now() + Duration::from_millis(self.config.turn_timeout_ms.max(1));
            self.inflight.insert(token, Inflight { worker: index, job: id, deadline });
            let sender = self.workers[index].sender.as_ref().expect("live worker has a sender");
            if sender.send(Assignment { token, spec }).is_err() {
                // The worker died outside a turn (should not happen); treat
                // like a wedge so the job strikes and the pool self-heals.
                self.inflight.remove(&token);
                self.replace_worker(index);
                self.strike(id, "worker channel closed");
            }
        }
    }

    /// Blocks until one in-flight turn finishes or times out, and
    /// processes it.
    fn await_one(&mut self) {
        loop {
            let now = Instant::now();
            let Some(earliest) = self.inflight.values().map(|i| i.deadline).min() else {
                return;
            };
            match self.result_rx.recv_timeout(earliest.saturating_duration_since(now)) {
                Ok(result) => {
                    let Some(inflight) = self.inflight.remove(&result.token) else {
                        // Stale result from a replaced (wedged) worker whose
                        // turn already struck out; its journal writes are
                        // still valid, its verdict is not.
                        continue;
                    };
                    debug_assert_eq!(inflight.job, result.job);
                    self.process(result);
                    return;
                }
                Err(RecvTimeoutError::Timeout) => {
                    let now = Instant::now();
                    let overdue: Vec<u64> = self
                        .inflight
                        .iter()
                        .filter(|(_, i)| i.deadline <= now)
                        .map(|(token, _)| *token)
                        .collect();
                    if overdue.is_empty() {
                        continue;
                    }
                    for token in overdue {
                        self.handle_wedge(token);
                    }
                    return;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("engine holds a result sender; channel cannot close")
                }
            }
        }
    }

    fn process(&mut self, result: TurnResult) {
        self.turns += 1;
        let id = result.job;
        match result.payload {
            Payload::Progress(data) => {
                self.absorb_turn(id, data);
                if let Some(job) = self.jobs.get_mut(&id) {
                    job.turns += 1;
                    job.phase = JobPhase::Queued;
                }
            }
            Payload::Finished(data) => {
                self.absorb_turn(id, data);
                if let Some(job) = self.jobs.get_mut(&id) {
                    job.turns += 1;
                    job.phase = JobPhase::Completed;
                }
                self.tracer.record(EventKind::JobLifecycle { job: id, phase: "completed" });
            }
            Payload::Panicked => self.strike(id, "worker turn panicked"),
            Payload::Failed(error) => self.strike(id, &error),
        }
    }

    fn absorb_turn(&mut self, id: u64, data: TurnData) {
        self.journal_retries += data.retries;
        if data.retries > 0 {
            self.tracer.record(EventKind::RetryBackoff {
                op: "journal-append",
                attempt: data.retries.min(u64::from(u32::MAX)) as u32,
            });
        }
        if let Some(job) = self.jobs.get(&id) {
            let firmware = firmware_identity(&job.spec.firmware);
            for finding in data.findings {
                self.store.record(firmware, id, finding);
            }
        }
        if !data.spans.is_empty() {
            let trace = self.job_traces.entry(id).or_default();
            for span in data.spans {
                trace.push_span(span);
            }
        }
    }

    /// A failed turn: strike the job, quarantining it at the bound. The
    /// job's journal survives quarantine (post-mortem evidence); its
    /// findings leave the shared store because a crashing job's reports
    /// are no longer trustworthy.
    fn strike(&mut self, id: u64, reason: &str) {
        let Some(job) = self.jobs.get_mut(&id) else { return };
        job.strikes += 1;
        let strikes = job.strikes;
        self.tracer.record(EventKind::DegradedMode {
            component: "scheduler",
            detail: format!("job {id} strike {strikes}: {reason}"),
        });
        if strikes >= self.config.max_strikes {
            job.phase = JobPhase::Quarantined;
            self.store.remove_job(id);
            self.job_traces.remove(&id);
            let marker = quarantine_marker(&self.config.state_dir, id);
            let body = format!("strikes: {strikes}\nlast: {reason}\n");
            let (result, _) =
                retry_io(RetryPolicy::default(), || std::fs::write(&marker, body.as_bytes()));
            if let Err(err) = result {
                // Marker write failure degrades restart recovery (the job
                // will re-strike to quarantine) but loses nothing.
                self.tracer.record(EventKind::DegradedMode {
                    component: "daemon",
                    detail: format!("quarantine marker for job {id} failed: {err}"),
                });
            }
            self.tracer.record(EventKind::JobLifecycle { job: id, phase: "quarantined" });
        } else {
            job.phase = JobPhase::Queued;
            self.tracer.record(EventKind::RetryBackoff { op: "job-turn", attempt: strikes });
        }
    }

    /// A turn blew the wall-clock bound: the worker thread is presumed
    /// wedged. Replace it (pinned jobs rebuild their sessions from
    /// journals — lossless) and strike the job it was running.
    fn handle_wedge(&mut self, token: u64) {
        let Some(inflight) = self.inflight.remove(&token) else { return };
        self.replace_worker(inflight.worker);
        self.turns += 1;
        self.strike(inflight.job, "turn timeout (worker wedged)");
    }

    fn replace_worker(&mut self, index: usize) {
        self.workers_replaced += 1;
        self.tracer.record(EventKind::DegradedMode {
            component: "pool",
            detail: format!("replacing worker {index}"),
        });
        // Dropping the old sender makes the wedged thread exit after its
        // current (ignored) turn; dropping its JoinHandle detaches it so
        // the engine never blocks on a wedged thread. It can no longer
        // write: its last journal append completed before the wedge.
        self.workers[index] = spawn_worker(
            index,
            self.config.clone(),
            self.result_tx.clone(),
            Arc::clone(&self.bases),
        );
    }

    // -- Introspection ------------------------------------------------------

    /// `(id, firmware, phase, turns)` for every job, in id order.
    pub fn jobs_status(&self) -> Vec<(u64, String, JobPhase, u64)> {
        self.jobs.values().map(|j| (j.spec.id, j.spec.firmware.clone(), j.phase, j.turns)).collect()
    }

    /// The cross-campaign findings store.
    pub fn store(&self) -> &FindingsStore {
        &self.store
    }

    /// The daemon's own tracer (job lifecycle, degradation, retry events).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains buffered daemon events.
    pub fn drain_events(&self) -> Vec<Event> {
        self.tracer.drain()
    }

    /// The deterministic trace accumulated for `id` this process (only
    /// meaningful when [`ServeConfig::trace`] is set).
    pub fn job_trace(&self, id: u64) -> Option<&MergedTrace> {
        self.job_traces.get(&id)
    }

    /// Derives one job's report from its journal's newest checkpoint — a
    /// pure function of durable state, so it is identical across any
    /// kill/restart schedule that reaches the same checkpoints.
    pub fn job_report(&self, id: u64) -> JobReport {
        let Some(job) = self.jobs.get(&id) else { return JobReport::default() };
        let path = job.spec.journal_path(&self.config.state_dir);
        let Ok(loaded) = Journal::load(&path) else { return JobReport::default() };
        let Some(cp) = loaded.last_checkpoint() else { return JobReport::default() };
        JobReport {
            iterations: cp.iteration,
            execs: cp.fuzzer.execs,
            corpus: cp.fuzzer.corpus_entries.len(),
            coverage: cp.fuzzer.global_map.iter().filter(|&&b| b != 0).count(),
            findings: cp.fuzzer.findings.len(),
        }
    }

    /// The deterministic daemon report (`embsan-serve-report-v1`): per-job
    /// journal-derived stats plus the deduplicated findings store. At
    /// idle (every job terminal) this is byte-identical across any
    /// kill/restart schedule.
    pub fn report_json(&self) -> String {
        let mut out = String::from("{\"format\":\"embsan-serve-report-v1\",\"jobs\":[");
        for (index, (id, job)) in self.jobs.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let report = self.job_report(*id);
            out.push_str(&format!(
                "{{\"id\":{id},\"firmware\":\"{}\",\"phase\":\"{}\",\"iterations\":{},\
                 \"execs\":{},\"corpus\":{},\"coverage\":{},\"findings\":{}}}",
                crate::protocol::escape_json(&job.spec.firmware),
                job.phase.name(),
                report.iterations,
                report.execs,
                report.corpus,
                report.coverage,
                report.findings,
            ));
        }
        out.push_str("],\"store\":");
        out.push_str(&self.store.to_json());
        out.push('}');
        out
    }

    /// A metrics snapshot: journal-derived per-job and store counters in
    /// the deterministic class, scheduler/host-IO counters as telemetry.
    /// `snapshot.to_json(false)` is the deterministic artifact the
    /// resilience gate compares byte-for-byte.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        use MetricClass::{Deterministic, Telemetry};
        let mut registry = MetricsRegistry::new();
        let mut completed = 0u64;
        let mut quarantined = 0u64;
        for (id, job) in &self.jobs {
            match job.phase {
                JobPhase::Completed => completed += 1,
                JobPhase::Quarantined => quarantined += 1,
                _ => {}
            }
            let report = self.job_report(*id);
            let sub = format!("job{id:04}");
            registry.counter(&sub, "iterations", Deterministic, report.iterations);
            registry.counter(&sub, "execs", Deterministic, report.execs);
            registry.gauge(&sub, "corpus", Deterministic, report.corpus as i64);
            registry.gauge(&sub, "coverage", Deterministic, report.coverage as i64);
            registry.gauge(&sub, "findings", Deterministic, report.findings as i64);
        }
        registry.gauge("store", "uniques", Deterministic, self.store.uniques() as i64);
        registry.gauge("store", "attributions", Deterministic, self.store.attributions() as i64);
        registry.counter("daemon", "jobs_completed", Deterministic, completed);
        registry.counter("daemon", "jobs_quarantined", Deterministic, quarantined);
        registry.counter("daemon", "turns", Telemetry, self.turns);
        registry.counter("daemon", "journal_io_retries", Telemetry, self.journal_retries);
        registry.counter("daemon", "manifest_io_retries", Telemetry, self.manifest_retries);
        registry.counter("daemon", "workers_replaced", Telemetry, self.workers_replaced);
        registry.counter("daemon", "jobs_parked", Telemetry, self.park_events);
        registry.snapshot()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            worker.sender.take();
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

fn quarantine_marker(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join(format!("job-{id:04}.quarantine"))
}

// ---------------------------------------------------------------------------
// Worker side.

/// A worker's warm per-job context. Sessions are thread-affine (`!Send`),
/// so contexts live entirely inside the worker thread; the journal on
/// disk remains the source of truth and a context can always be rebuilt
/// from it.
struct JobCtx {
    fw: &'static FirmwareSpec,
    session: Session,
    dict: Dictionary,
    journal: Journal,
    start: StartInfo,
    resume: Option<ResumePoint>,
}

fn spawn_worker(
    index: usize,
    config: ServeConfig,
    tx: Sender<TurnResult>,
    bases: BaseCache,
) -> WorkerHandle {
    let (sender, rx) = channel::<Assignment>();
    let thread = std::thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || worker_loop(&rx, &tx, &config, &bases))
        .expect("spawn serve worker");
    WorkerHandle { sender: Some(sender), thread: Some(thread) }
}

fn worker_loop(
    rx: &Receiver<Assignment>,
    tx: &Sender<TurnResult>,
    config: &ServeConfig,
    bases: &BaseCache,
) {
    let mut ctxs: HashMap<u64, JobCtx> = HashMap::new();
    while let Ok(Assignment { token, spec }) = rx.recv() {
        let job = spec.id;
        let payload =
            match catch_unwind(AssertUnwindSafe(|| run_turn(&mut ctxs, &spec, config, bases))) {
                Ok(payload) => payload,
                Err(_) => {
                    // The panicked turn may have left the context
                    // half-mutated; drop it — the journal has everything.
                    ctxs.remove(&job);
                    Payload::Panicked
                }
            };
        // A send failure means the engine is gone (or replaced us); either
        // way there is no one to report to.
        if tx.send(TurnResult { token, job, payload }).is_err() {
            break;
        }
    }
}

fn run_turn(
    ctxs: &mut HashMap<u64, JobCtx>,
    spec: &JobSpec,
    config: &ServeConfig,
    bases: &BaseCache,
) -> Payload {
    match turn_inner(ctxs, spec, config, bases) {
        Ok(payload) => payload,
        Err(error) => Payload::Failed(error),
    }
}

fn strategy_for(spec: &FirmwareSpec) -> Strategy {
    match spec.fuzzer {
        PaperFuzzer::Syzkaller => Strategy::Syz,
        PaperFuzzer::Tardis => Strategy::Tardis,
    }
}

/// Builds (or reuses) the job's context and runs one fair-share slice
/// under the supervised span. Drills fire *after* the span returns, so
/// the journal is always frame-consistent at the failure point.
fn turn_inner(
    ctxs: &mut HashMap<u64, JobCtx>,
    spec: &JobSpec,
    config: &ServeConfig,
    bases: &BaseCache,
) -> Result<Payload, String> {
    ensure_ctx(ctxs, spec, config, bases)?;
    let ctx = ctxs.get_mut(&spec.id).expect("context just ensured");
    let total = ctx.start.iterations;
    let cur = match &ctx.resume {
        Some(point) if point.state.is_some() => point.iteration,
        _ => 0,
    };
    let slice_end = cur.saturating_add(config.slice).min(total);
    let drill = spec.drill.filter(|d| cur <= d.at() && d.at() < slice_end);
    let sup_config = SupervisorConfig {
        campaign: CampaignConfig {
            iterations: total,
            seed: ctx.start.seed,
            ready_budget: ctx.start.ready_budget,
            program_budget: ctx.start.program_budget,
            model_free: ctx.start.model_free,
            mmio_withheld: ctx.start.mmio_withheld,
        },
        checkpoint_interval: config.slice,
        // kill_after == total never fires (the loop exits first), so the
        // final slice completes the campaign in the same call.
        kill_after: Some(drill.map_or(slice_end, |d| d.at())),
        trace: config.trace,
        ..SupervisorConfig::default()
    };
    let resume = ctx.resume.take();
    let descs = descriptions_for(ctx.fw);
    let (outcome, continuation) = run_supervised_span(
        &mut ctx.session,
        descs,
        ctx.dict.clone(),
        &sup_config,
        ctx.start.clone(),
        resume,
        Some(&mut ctx.journal),
    )
    .map_err(|e| e.to_string())?;
    let data = TurnData {
        findings: outcome.findings.iter().map(|f| StoreFinding::from_report(&f.report)).collect(),
        spans: outcome.trace.map(|t| t.spans).unwrap_or_default(),
        retries: outcome.journal_retries,
    };
    if outcome.completed {
        ctxs.remove(&spec.id);
        return Ok(Payload::Finished(data));
    }
    ctx.resume = continuation;
    if let Some(drill) = drill {
        match drill {
            Drill::PanicAfter(at) => panic!("resilience drill: panic after iteration {at}"),
            Drill::WedgeAt(_) => {
                // Wedge without touching the journal again: the engine's
                // replacement worker reopens it, and a write from this
                // zombie thread would race the replacement's appends.
                std::thread::sleep(Duration::from_millis(
                    config.turn_timeout_ms.saturating_mul(3).max(50),
                ));
                return Ok(Payload::Failed("wedged (drill)".to_string()));
            }
        }
    }
    Ok(Payload::Progress(data))
}

/// Builds the job's context if absent: load (or create) its journal,
/// derive the resume point, and boot a fresh session. All inputs are
/// durable or deterministic, so a rebuilt context continues the campaign
/// exactly where any previous one stopped.
fn ensure_ctx(
    ctxs: &mut HashMap<u64, JobCtx>,
    spec: &JobSpec,
    config: &ServeConfig,
    bases: &BaseCache,
) -> Result<(), String> {
    if ctxs.contains_key(&spec.id) {
        return Ok(());
    }
    let fw = firmware_by_name(&spec.firmware)
        .ok_or_else(|| format!("unknown firmware `{}`", spec.firmware))?;
    let campaign = CampaignConfig {
        iterations: spec.iterations,
        seed: spec.seed,
        ready_budget: config.ready_budget,
        program_budget: config.program_budget,
        // Daemon campaigns always fuzz with the platform MMIO model.
        model_free: None,
        mmio_withheld: false,
    };
    let mut start = StartInfo {
        firmware: spec.firmware.clone(),
        strategy: strategy_for(fw),
        seed: spec.seed,
        iterations: spec.iterations,
        ready_budget: campaign.ready_budget,
        program_budget: campaign.program_budget,
        checkpoint_interval: config.slice,
        base_hash: 0,
        model_free: campaign.model_free,
        mmio_withheld: campaign.mmio_withheld,
    };
    let path = spec.journal_path(&config.state_dir);
    let (journal, resume) = if path.exists() {
        let loaded = Journal::load(&path).map_err(|e| format!("journal load: {e}"))?;
        // A journal with no intact Start record (killed before the first
        // append) restarts from scratch: resume None re-appends Start.
        // An intact Start carries the base-image hash of the killed run;
        // adopting it makes the supervised span verify that the rebuilt
        // session forked from a bit-identical ready state.
        let resume = loaded.start().ok().map(|journaled| {
            start.base_hash = journaled.base_hash;
            ResumePoint::from_journal(&loaded)
        });
        let journal =
            Journal::reopen(&path, loaded.valid_len).map_err(|e| format!("journal reopen: {e}"))?;
        (journal, resume)
    } else {
        (Journal::create(&path).map_err(|e| format!("journal create: {e}"))?, None)
    };
    let (mut session, dict) = prepare_session(fw, &campaign).map_err(|e| e.to_string())?;
    // Share one base image per firmware across the whole daemon. Every job
    // of a firmware boots to the same ready state, so the first session to
    // come up publishes its base and the rest adopt it, holding only their
    // dirty-page overlays. A hash mismatch (adopt_base returns false)
    // keeps the private copy — correct, just not shared.
    {
        let mut cache = bases.lock().unwrap();
        match cache.get(&firmware_identity(&spec.firmware)) {
            Some(base) => {
                let base = Arc::clone(base);
                drop(cache);
                session.adopt_base(&base).map_err(|e| format!("base adopt: {e}"))?;
            }
            None => {
                if let Some(own) = session.base() {
                    cache.insert(firmware_identity(&spec.firmware), Arc::clone(own));
                }
            }
        }
    }
    ctxs.insert(spec.id, JobCtx { fw, session, dict, journal, start, resume });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ServeConfig::default();
        assert!(config.workers >= 1);
        assert!(config.slice >= 1);
        assert!(config.max_active >= 1);
        assert!(config.max_queued >= config.max_active);
    }

    #[test]
    fn submit_validates_and_bounds_the_queue() {
        let dir = std::env::temp_dir().join(format!("embsan-serve-submit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            state_dir: dir.clone(),
            workers: 1,
            max_queued: 2,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::open(config).unwrap();
        assert!(engine.submit("no-such-firmware", 10, 0, 0, None).is_err());
        assert!(engine.submit("TP-Link WDR-7660", 0, 0, 0, None).is_err());
        let a = engine.submit("TP-Link WDR-7660", 10, 0, 0, None).unwrap();
        let b = engine.submit("TP-Link WDR-7660", 10, 1, 0, None).unwrap();
        assert_eq!((a, b), (0, 1));
        let err = engine.submit("TP-Link WDR-7660", 10, 2, 0, None).unwrap_err();
        assert!(err.contains("queue full"), "{err}");
        // Rejection produced a degraded-mode event.
        let events = engine.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::DegradedMode { component: "daemon", .. })));
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_restores_the_queue_across_reopen() {
        let dir = std::env::temp_dir().join(format!("embsan-serve-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig { state_dir: dir.clone(), workers: 1, ..ServeConfig::default() };
        let mut engine = ServeEngine::open(config.clone()).unwrap();
        engine.submit("TP-Link WDR-7660", 10, 0, 3, None).unwrap();
        engine.submit("TP-Link WDR-7660", 10, 1, 0, Some(Drill::PanicAfter(5))).unwrap();
        engine.shutdown();
        let engine = ServeEngine::open(config).unwrap();
        let status = engine.jobs_status();
        assert_eq!(status.len(), 2);
        assert!(status.iter().all(|(_, _, phase, _)| *phase == JobPhase::Queued));
        // Ids continue past recovered ones.
        let mut engine = engine;
        let id = engine.submit("TP-Link WDR-7660", 10, 2, 0, None).unwrap();
        assert_eq!(id, 2);
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parking_sheds_lowest_priority_first() {
        let dir = std::env::temp_dir().join(format!("embsan-serve-park-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            state_dir: dir.clone(),
            workers: 1,
            max_active: 1,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::open(config).unwrap();
        engine.submit("TP-Link WDR-7660", 10, 0, 0, None).unwrap();
        engine.submit("TP-Link WDR-7660", 10, 1, 5, None).unwrap();
        engine.refresh_parking();
        let status = engine.jobs_status();
        assert_eq!(status[0].2, JobPhase::Parked, "low priority parks");
        assert_eq!(status[1].2, JobPhase::Queued, "high priority stays runnable");
        // Load drops: the parked job is released.
        engine.config.max_active = 2;
        engine.refresh_parking();
        assert!(engine.jobs_status().iter().all(|(_, _, p, _)| *p == JobPhase::Queued));
        engine.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
