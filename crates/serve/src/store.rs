//! The multi-campaign findings store.
//!
//! Campaigns against the same firmware rediscover the same crashes; the
//! daemon's value over N independent `embsan fuzz` runs is a single
//! deduplicated view. Findings are keyed by `(firmware identity, crash
//! signature)` where the signature is [`Report::signature`] — bug class +
//! faulting PC + access shape — so two jobs hitting the same heap
//! overflow from different inputs collapse into one entry that remembers
//! both reporters.
//!
//! The store is derived state: it is rebuilt from job journals on daemon
//! restart and an entry's reporters shrink when a job is quarantined
//! (a quarantined job's findings are suspect — its journal is kept for
//! post-mortem, but its evidence leaves the shared view).

use std::collections::{BTreeMap, BTreeSet};

use embsan_core::report::{BugClass, Report};

/// One deduplicated finding as submitted by a worker turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFinding {
    /// Crash signature ([`Report::signature`]).
    pub signature: u64,
    /// Bug-class code ([`BugClass::code`]).
    pub class: u8,
    /// Faulting program counter.
    pub pc: u32,
}

impl StoreFinding {
    /// Extracts the store key material from a triaged report.
    pub fn from_report(report: &Report) -> StoreFinding {
        StoreFinding { signature: report.signature(), class: report.class.code(), pc: report.pc }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct StoreEntry {
    class: u8,
    pc: u32,
    /// Job ids that reported this signature (sorted, deduplicated).
    reporters: BTreeSet<u64>,
}

/// Cross-campaign deduplicated findings, keyed by
/// `(firmware hash, crash signature)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FindingsStore {
    entries: BTreeMap<(u64, u64), StoreEntry>,
}

impl FindingsStore {
    /// An empty store.
    pub fn new() -> FindingsStore {
        FindingsStore::default()
    }

    /// Records one finding from `job`. Returns `true` when the signature
    /// is new for this firmware (a genuinely novel crash across every
    /// campaign the daemon has run).
    pub fn record(&mut self, firmware_hash: u64, job: u64, finding: StoreFinding) -> bool {
        let entry = self.entries.entry((firmware_hash, finding.signature)).or_insert_with(|| {
            StoreEntry { class: finding.class, pc: finding.pc, reporters: BTreeSet::new() }
        });
        let novel = entry.reporters.is_empty();
        entry.reporters.insert(job);
        novel
    }

    /// Withdraws every finding `job` reported (quarantine). Entries with
    /// no remaining reporter disappear entirely.
    pub fn remove_job(&mut self, job: u64) {
        self.entries.retain(|_, entry| {
            entry.reporters.remove(&job);
            !entry.reporters.is_empty()
        });
    }

    /// Unique crash signatures currently in the store.
    pub fn uniques(&self) -> usize {
        self.entries.len()
    }

    /// Total (firmware, signature, reporter) attribution edges.
    pub fn attributions(&self) -> usize {
        self.entries.values().map(|e| e.reporters.len()).sum()
    }

    /// Deterministic JSON rendering: entries in key order, reporters
    /// sorted, no timing or host data. Byte-identical across any
    /// kill/resume schedule that reaches the same set of findings.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"uniques\":");
        out.push_str(&self.uniques().to_string());
        out.push_str(",\"entries\":[");
        for (index, ((firmware, signature), entry)) in self.entries.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let label = BugClass::from_code(entry.class).map_or("unknown", |c| c.label());
            out.push_str(&format!(
                "{{\"firmware\":{firmware},\"signature\":{signature},\"class\":\"{label}\",\
                 \"pc\":{},\"reporters\":[",
                entry.pc
            ));
            for (rindex, reporter) in entry.reporters.iter().enumerate() {
                if rindex > 0 {
                    out.push(',');
                }
                out.push_str(&reporter.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// FNV-1a hash of a firmware's name — the store's firmware identity.
/// (Campaign determinism is seeded per-spec, so the name is the identity;
/// hashing keeps the store key fixed-width and the JSON compact.)
pub fn firmware_identity(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.as_bytes() {
        hash = (hash ^ u64::from(*byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(signature: u64) -> StoreFinding {
        StoreFinding { signature, class: 1, pc: 0x1000 }
    }

    #[test]
    fn dedupes_across_jobs_of_the_same_firmware() {
        let mut store = FindingsStore::new();
        let fw = firmware_identity("TP-Link WDR-7660");
        assert!(store.record(fw, 0, finding(42)));
        assert!(!store.record(fw, 1, finding(42)), "same crash from another job");
        assert!(!store.record(fw, 1, finding(42)), "same crash twice from one job");
        assert!(store.record(fw, 1, finding(43)));
        assert_eq!(store.uniques(), 2);
        assert_eq!(store.attributions(), 3);
        // A different firmware hitting the same signature is a new entry.
        assert!(store.record(firmware_identity("other"), 2, finding(42)));
        assert_eq!(store.uniques(), 3);
    }

    #[test]
    fn quarantine_withdraws_a_jobs_evidence() {
        let mut store = FindingsStore::new();
        let fw = firmware_identity("fw");
        store.record(fw, 0, finding(1));
        store.record(fw, 1, finding(1));
        store.record(fw, 1, finding(2));
        store.remove_job(1);
        assert_eq!(store.uniques(), 1, "sole-reporter entry disappears");
        assert_eq!(store.attributions(), 1);
        let rendered = store.to_json();
        assert!(rendered.contains("\"reporters\":[0]"), "{rendered}");
        assert!(!rendered.contains("\"signature\":2,"), "{rendered}");
    }

    #[test]
    fn json_is_order_independent() {
        let fw = firmware_identity("fw");
        let mut a = FindingsStore::new();
        a.record(fw, 0, finding(5));
        a.record(fw, 1, finding(3));
        let mut b = FindingsStore::new();
        b.record(fw, 1, finding(3));
        b.record(fw, 0, finding(5));
        assert_eq!(a.to_json(), b.to_json());
    }
}
