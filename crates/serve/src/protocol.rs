//! The daemon's line-delimited JSON IPC protocol.
//!
//! One request per line, one response per line, over a Unix stream
//! socket. Requests are flat JSON objects dispatched on a `cmd` field;
//! responses carry `"ok": true` plus command-specific fields, or
//! `"ok": false` with an `error` string. The parser is a small
//! recursive-descent JSON reader (the repo is serde-free by design;
//! hand-rolled wire formats are the house idiom).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::job::Drill;

/// A parsed JSON value (integers only — the protocol has no floats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all protocol numbers are u64).
    Num(u64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order discarded; duplicate keys keep the last).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a u64, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = Result<T, String>;

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> ParseResult<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> ParseResult<()> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> ParseResult<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> ParseResult<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected `{}` at byte {}", other as char, self.pos)),
        }
    }

    fn number(&mut self) -> ParseResult<Value> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        text.parse::<u64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            let byte =
                *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match byte {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
                }
                b'\\' => {
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        other => return Err(format!("unsupported escape `\\{}`", other as char)),
                    }
                }
                // Raw bytes (including multi-byte UTF-8 sequences from the
                // &str input) pass through and are validated once at the end.
                other => out.push(other),
            }
        }
    }

    fn array(&mut self) -> ParseResult<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got `{}`", other as char)),
            }
        }
    }

    fn object(&mut self) -> ParseResult<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected `,` or `}}`, got `{}`", other as char)),
            }
        }
    }
}

/// Parses one JSON value from `text` (trailing whitespace allowed).
///
/// # Errors
///
/// A message describing the first syntax error.
pub fn parse_json(text: &str) -> ParseResult<Value> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes after value at byte {}", parser.pos));
    }
    Ok(value)
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Submit a campaign.
    Submit {
        /// Firmware spec name.
        firmware: String,
        /// Campaign iterations.
        iterations: u64,
        /// RNG seed.
        seed: u64,
        /// Scheduling priority (higher is shed last under pressure).
        priority: u64,
        /// Optional resilience drill.
        drill: Option<Drill>,
    },
    /// List jobs and their phases.
    Jobs,
    /// The cross-campaign findings store.
    Findings,
    /// The full deterministic report.
    Report,
    /// Stop the daemon (jobs keep their journals; restart resumes them).
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A message suitable for an `"ok": false` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse_json(line)?;
    let obj = value.as_obj().ok_or("request must be a JSON object")?;
    let cmd = obj.get("cmd").and_then(Value::as_str).ok_or("missing `cmd` string")?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "jobs" => Ok(Request::Jobs),
        "findings" => Ok(Request::Findings),
        "report" => Ok(Request::Report),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let firmware = obj
                .get("firmware")
                .and_then(Value::as_str)
                .ok_or("submit: missing `firmware` string")?
                .to_string();
            let iterations = obj
                .get("iterations")
                .and_then(Value::as_u64)
                .ok_or("submit: missing `iterations` number")?;
            if iterations == 0 {
                return Err("submit: `iterations` must be positive".to_string());
            }
            let seed = obj.get("seed").and_then(Value::as_u64).unwrap_or(0);
            let priority = obj.get("priority").and_then(Value::as_u64).unwrap_or(0);
            let drill = match obj.get("drill") {
                None | Some(Value::Null) => None,
                Some(value) => {
                    let text = value.as_str().ok_or("submit: `drill` must be a string")?;
                    Some(Drill::parse(text)?)
                }
            };
            Ok(Request::Submit { firmware, iterations, seed, priority, drill })
        }
        other => Err(format!("unknown cmd `{other}`")),
    }
}

/// Escapes a string for embedding in a JSON response.
pub fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds an `"ok": false` response line (no trailing newline).
pub fn error_response(message: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}", escape_json(message))
}

/// Builds an `"ok": true` response line from pre-rendered JSON fields
/// (each entry is `"key":<json>`; no trailing newline).
pub fn ok_response(fields: &[String]) -> String {
    let mut out = String::from("{\"ok\":true");
    for field in fields {
        out.push(',');
        out.push_str(field);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let value = parse_json(r#"{"a":[1,2,{"b":"x"}],"c":true,"d":null}"#).unwrap();
        let obj = value.as_obj().unwrap();
        assert_eq!(obj.get("c"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("d"), Some(&Value::Null));
        match obj.get("a") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0], Value::Num(1));
                assert_eq!(items[2].as_obj().unwrap().get("b").unwrap().as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = parse_json(r#""a\"b\\c\nd — ü""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"b\\c\nd — ü"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1}x", "-5", "tru"] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn requests_roundtrip_through_the_parser() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap(), Request::Ping);
        let submit = parse_request(
            r#"{"cmd":"submit","firmware":"TP-Link WDR-7660","iterations":400,"seed":5,"priority":2,"drill":"panic-after:40"}"#,
        )
        .unwrap();
        assert_eq!(
            submit,
            Request::Submit {
                firmware: "TP-Link WDR-7660".to_string(),
                iterations: 400,
                seed: 5,
                priority: 2,
                drill: Some(Drill::PanicAfter(40)),
            }
        );
        assert!(parse_request(r#"{"cmd":"submit","firmware":"x"}"#).is_err(), "no iterations");
        assert!(parse_request(r#"{"cmd":"nope"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        let ok = ok_response(&["\"id\":7".to_string()]);
        assert_eq!(ok, "{\"ok\":true,\"id\":7}");
        parse_json(&ok).unwrap();
        let err = error_response("bad \"thing\"\n");
        parse_json(&err).unwrap();
    }
}
