//! `embsan-serve`: a crash-tolerant campaign daemon.
//!
//! The fuzzing stack below this crate already survives being killed — a
//! supervised campaign journals every durable event and resumes from its
//! newest checkpoint bit-identically. This crate scales that guarantee
//! from one campaign to a *fleet*: a daemon that schedules many campaigns
//! across a bounded worker pool and stays correct when any piece of it
//! (a worker turn, a worker thread, or the daemon process itself) dies at
//! an arbitrary instant.
//!
//! - [`engine`] — the scheduler and supervision tree: fair-share slices,
//!   bounded retry with strikes, quarantine of crashing/wedging jobs,
//!   graceful degradation (parking, submission shedding), and restart
//!   recovery from the durable state directory;
//! - [`store`] — the multi-campaign findings store, deduplicating crash
//!   signatures across jobs of the same firmware;
//! - [`job`] — job specifications, resilience drills, and the append-only
//!   job manifest;
//! - [`protocol`] — the line-delimited JSON request/response wire format;
//! - [`daemon`] — the Unix-socket front-end (`embsan serve`) and the
//!   client helper used by `embsan submit` / `embsan jobs`.
//!
//! The engine's invariant, enforced by `tests/serve_resilience.rs`: at
//! idle, the daemon report and deterministic metrics snapshot are a pure
//! function of the submitted jobs — byte-identical across any
//! kill/restart schedule, with or without quarantined jobs in the mix.

pub mod daemon;
pub mod engine;
pub mod job;
pub mod protocol;
pub mod store;

#[cfg(unix)]
pub use daemon::{request, run_daemon, DaemonConfig};
pub use engine::{JobReport, ServeConfig, ServeEngine};
pub use job::{
    append_manifest, load_manifest, repair_manifest, Drill, JobPhase, JobSpec, MANIFEST,
};
pub use protocol::{parse_json, parse_request, Request, Value};
pub use store::{firmware_identity, FindingsStore, StoreFinding};
