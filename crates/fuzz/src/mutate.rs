//! Program generation and mutation.
//!
//! The mutator is shared by both fuzzing strategies; the difference is how
//! much interface knowledge it applies:
//!
//! - **Syz**: argument kinds from the syscall descriptions keep slots,
//!   sizes and offsets in their natural ranges;
//! - **Tardis**: only the interface *shape* (numbers and arities) is used;
//!   argument values are unconstrained.
//!
//! Both splice dictionary constants into arguments — byte-wise and whole —
//! which is what lets coverage-guided search climb staged magic-value
//! gates one comparison at a time.

use embsan_guestos::executor::{ExecProgram, MAX_ARGS};

use crate::descs::{ArgKind, SyscallDesc};
use crate::dictionary::Dictionary;
use crate::fuzzer::Strategy;
use crate::rng::SplitMix64;

/// Interesting boundary values mixed into numeric arguments.
const INTERESTING: [u32; 8] = [0, 1, 7, 8, 0xFF, 0x100, 0xFFFF, u32::MAX];

/// Program generator/mutator.
#[derive(Debug)]
pub struct Mutator {
    descs: Vec<SyscallDesc>,
    dict: Dictionary,
    /// Harvested comparison operands appended to the dictionary pool
    /// (directed campaigns; empty otherwise, which leaves every draw
    /// bit-identical to the dictionary-only mutator).
    operands: Vec<u32>,
    strategy: Strategy,
    max_calls: usize,
}

impl Mutator {
    /// Creates a mutator over the given interface.
    ///
    /// # Panics
    ///
    /// Panics if `descs` is empty.
    pub fn new(
        descs: Vec<SyscallDesc>,
        dict: Dictionary,
        strategy: Strategy,
        max_calls: usize,
    ) -> Mutator {
        assert!(!descs.is_empty(), "mutator needs at least one syscall description");
        Mutator { descs, dict, operands: Vec::new(), strategy, max_calls }
    }

    /// Installs harvested comparison operands (directed campaigns). They
    /// join the dictionary pool for every constant draw; with an empty
    /// slice the mutator is bit-identical to the plain dictionary mutator.
    pub fn set_operands(&mut self, operands: &[u32]) {
        self.operands = operands.to_vec();
    }

    /// Picks from the combined constant pool — dictionary values first,
    /// then harvested operands — with a single index draw, so the RNG
    /// stream does not depend on whether operands are loaded.
    fn pick_const(&self, index: usize) -> Option<u32> {
        let dict = self.dict.values();
        let total = dict.len() + self.operands.len();
        if total == 0 {
            return None;
        }
        let at = index % total;
        Some(if at < dict.len() { dict[at] } else { self.operands[at - dict.len()] })
    }

    fn gen_value(&self, rng: &mut SplitMix64) -> u32 {
        match rng.range_u32(0, 4) {
            0 => INTERESTING[rng.range_usize(0, INTERESTING.len())],
            1 => self.pick_const(rng.gen_usize()).unwrap_or_else(|| rng.gen_u32()),
            2 => rng.range_u32(0, 1024),
            _ => rng.gen_u32(),
        }
    }

    /// Generates one argument appropriate for `kind`.
    fn gen_arg(&self, kind: ArgKind, rng: &mut SplitMix64) -> u32 {
        if self.strategy == Strategy::Tardis {
            // Shape-only: no kind knowledge.
            return self.gen_value(rng);
        }
        match kind {
            ArgKind::Slot => rng.range_u32(0, 8),
            ArgKind::Size => match rng.range_u32(0, 3) {
                0 => rng.range_u32(1, 64),
                1 => rng.range_u32(1, 1024),
                _ => INTERESTING[rng.range_usize(0, INTERESTING.len())],
            },
            ArgKind::Offset => rng.range_u32(0, 1100),
            ArgKind::Value | ArgKind::Key => self.gen_value(rng),
        }
    }

    /// Generates a call from a random description.
    fn gen_call(&self, rng: &mut SplitMix64) -> (u8, Vec<u32>) {
        let desc = &self.descs[rng.range_usize(0, self.descs.len())];
        let args = desc.args.iter().map(|&k| self.gen_arg(k, rng)).collect();
        (desc.nr, args)
    }

    /// Generates a fresh program of 1–8 calls.
    pub fn generate(&self, rng: &mut SplitMix64) -> ExecProgram {
        let mut program = ExecProgram::new();
        for _ in 0..rng.range_usize_incl(1, 8usize.min(self.max_calls)) {
            let (nr, args) = self.gen_call(rng);
            program.push(nr, &args);
        }
        program
    }

    /// Mutates one argument value in place.
    fn mutate_value(&self, value: u32, rng: &mut SplitMix64) -> u32 {
        match rng.range_u32(0, 6) {
            0 => value ^ (1 << rng.range_u32(0, 32)), // bit flip
            1 => {
                // Replace one byte with a random byte.
                let shift = 8 * rng.range_u32(0, 4);
                (value & !(0xFF << shift)) | (u32::from(rng.gen_u8()) << shift)
            }
            2 => {
                // Splice a dictionary byte into one byte position — the
                // stage-climbing move for byte-compared gates.
                let byte = self.pick_const(rng.gen_usize()).unwrap_or_else(|| rng.gen_u32()) & 0xFF;
                let shift = 8 * rng.range_u32(0, 4);
                (value & !(0xFF << shift)) | (byte << shift)
            }
            3 => self.pick_const(rng.gen_usize()).unwrap_or_else(|| rng.gen_u32()),
            4 => value.wrapping_add(rng.range_u32(0, 8)).wrapping_sub(4),
            _ => INTERESTING[rng.range_usize(0, INTERESTING.len())],
        }
    }

    fn kind_of(&self, nr: u8, arg_index: usize) -> ArgKind {
        self.descs
            .iter()
            .find(|d| d.nr == nr)
            .and_then(|d| d.args.get(arg_index))
            .copied()
            .unwrap_or(ArgKind::Value)
    }

    /// Produces a mutated copy of `program` (1–3 stacked mutations).
    pub fn mutate(&self, program: &ExecProgram, rng: &mut SplitMix64) -> ExecProgram {
        let mut out = program.clone();
        for _ in 0..rng.range_usize_incl(1, 3) {
            let choice = rng.range_u32(0, 100);
            match choice {
                // Insert a generated call at a random position.
                0..=19 if out.calls.len() < self.max_calls => {
                    let (nr, args) = self.gen_call(rng);
                    let at = rng.range_usize_incl(0, out.calls.len());
                    out.calls.insert(at, embsan_guestos::executor::ExecCall::new(nr, &args));
                }
                // Remove a call.
                20..=29 if out.calls.len() > 1 => {
                    let at = rng.range_usize(0, out.calls.len());
                    out.calls.remove(at);
                }
                // Duplicate a call (races often need repetition).
                30..=39 if !out.calls.is_empty() && out.calls.len() < self.max_calls => {
                    let at = rng.range_usize(0, out.calls.len());
                    let call = out.calls[at].clone();
                    out.calls.insert(at, call);
                }
                // Mutate one argument.
                _ if !out.calls.is_empty() => {
                    let at = rng.range_usize(0, out.calls.len());
                    let call = &mut out.calls[at];
                    if call.args.is_empty() {
                        if call.args.len() < MAX_ARGS && rng.gen_bool(0.3) {
                            call.args.push(self.gen_value(rng));
                        }
                        continue;
                    }
                    let arg_at = rng.range_usize(0, call.args.len());
                    let nr = call.nr;
                    if self.strategy == Strategy::Syz && rng.gen_bool(0.5) {
                        // Regenerate by kind.
                        call.args[arg_at] = self.gen_arg(self.kind_of(nr, arg_at), rng);
                    } else {
                        call.args[arg_at] = self.mutate_value(call.args[arg_at], rng);
                    }
                }
                _ => {}
            }
        }
        if out.calls.is_empty() {
            return self.generate(rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descs::base_descriptions;

    fn mutator(strategy: Strategy) -> Mutator {
        Mutator::new(base_descriptions(), Dictionary::default(), strategy, 12)
    }

    #[test]
    fn generation_respects_limits() {
        let m = mutator(Strategy::Syz);
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..200 {
            let program = m.generate(&mut rng);
            assert!(!program.calls.is_empty());
            assert!(program.calls.len() <= 12);
            for call in &program.calls {
                assert!(call.args.len() <= MAX_ARGS);
                // Generated calls use described syscalls only.
                assert!(m.descs.iter().any(|d| d.nr == call.nr));
            }
        }
    }

    #[test]
    fn mutation_preserves_validity_and_changes_programs() {
        let m = mutator(Strategy::Syz);
        let mut rng = SplitMix64::seed_from_u64(2);
        let base = m.generate(&mut rng);
        let mut changed = 0;
        for _ in 0..100 {
            let mutated = m.mutate(&base, &mut rng);
            assert!(!mutated.calls.is_empty());
            assert!(mutated.calls.len() <= 12);
            if mutated != base {
                changed += 1;
            }
        }
        assert!(changed > 90, "mutations almost always change the program");
    }

    #[test]
    fn deterministic_under_seed() {
        let m = mutator(Strategy::Tardis);
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(m.generate(&mut a), m.generate(&mut b));
        }
    }

    #[test]
    fn empty_operands_are_bit_identical_to_plain_dictionary() {
        let dict = Dictionary::from_values(&[0x41, 0x1000, 0xBEEF]);
        let plain = Mutator::new(base_descriptions(), dict.clone(), Strategy::Tardis, 12);
        let mut loaded = Mutator::new(base_descriptions(), dict, Strategy::Tardis, 12);
        loaded.set_operands(&[]);
        let mut a = SplitMix64::seed_from_u64(99);
        let mut b = SplitMix64::seed_from_u64(99);
        let base = plain.generate(&mut a);
        assert_eq!(base, loaded.generate(&mut b));
        for _ in 0..200 {
            assert_eq!(plain.mutate(&base, &mut a), loaded.mutate(&base, &mut b));
            assert_eq!(a.state(), b.state(), "RNG streams diverged");
        }
    }

    #[test]
    fn operands_join_the_constant_pool() {
        let key = 0x1234_5678u32;
        let mut m = mutator(Strategy::Tardis);
        m.set_operands(&[key]);
        let mut rng = SplitMix64::seed_from_u64(5);
        let base = m.generate(&mut rng);
        let mut seen = false;
        for _ in 0..2000 {
            let mutated = m.mutate(&base, &mut rng);
            if mutated.calls.iter().any(|c| c.args.contains(&key)) {
                seen = true;
                break;
            }
        }
        assert!(seen, "harvested operand never spliced whole into an argument");
    }

    #[test]
    fn syz_keeps_slots_in_range() {
        let m = mutator(Strategy::Syz);
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..500 {
            let program = m.generate(&mut rng);
            for call in &program.calls {
                if call.nr == embsan_guestos::executor::sys::ALLOC {
                    assert!(call.args[1] < 8, "slot argument in range");
                }
            }
        }
    }
}
