//! Parallel sharded campaign engine with deterministic merges.
//!
//! The paper's pitch (§5) is that emulator-level interception is *cheap*;
//! this module supplies the other throughput lever: host-native parallel
//! execution. N workers each own a full `Machine` + [`Session`] (the
//! translation cache's `Rc` blocks make a session thread-affine, so every
//! worker builds its own from the same deterministic recipe) and pull
//! iteration chunks from a work-stealing scheduler.
//!
//! # Determinism argument
//!
//! An N-worker run reports the *same finding set, corpus and coverage* as
//! the 1-worker run because nothing an iteration computes depends on which
//! worker ran it or when:
//!
//! 1. The iteration space `0..iterations` is split into fixed *epochs* of
//!    [`ParallelConfig::epoch_len`] iterations. Workers claim chunks within
//!    the current epoch only.
//! 2. Iteration `i` derives its RNG purely from `(campaign seed, i)` and
//!    picks its input from the *corpus snapshot at the epoch boundary* — an
//!    immutable `Arc` swapped only between epochs.
//! 3. Guest execution is deterministic: each run starts from the pristine
//!    ready-state snapshot ([`Session::reset`]), so an iteration's outcome
//!    (coverage, reports, minimized reproducer) is a pure function of its
//!    program.
//! 4. At the epoch barrier one worker merges all results *sorted by
//!    iteration index*: coverage novelty, corpus admission and finding
//!    dedup (by [`Report::dedup_key`]) are evaluated in that canonical
//!    order, exactly as a single worker walking the epoch sequentially
//!    would.
//!
//! Workers publish per-execution coverage into a shared atomic edge bitmap
//! as they go; that bitmap is a live progress/telemetry view only — corpus
//! and coverage *decisions* always come from the canonical merge, which is
//! what keeps them schedule-independent.
//!
//! The parallel engine deliberately has no deterministic dictionary stage
//! (that queue is inherently sequential state); the sequential
//! [`crate::fuzzer::Fuzzer`] and the journaled supervised path remain the
//! bit-identical single-thread engines.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use embsan_core::report::{BugClass, Report};
use embsan_core::session::{BaseImage, Session, SessionError};
use embsan_emu::CacheStats;
use embsan_guestos::executor::{sys, ExecProgram};
use embsan_guestos::firmware::Fuzzer as PaperFuzzer;
use embsan_guestos::FirmwareSpec;
use embsan_obs::{
    Event, EventKind, MergedTrace, MetricClass, MetricsRegistry, MetricsSnapshot, TraceConfig,
    TraceSpan,
};

use crate::campaign::{
    attribute_findings, prepare_session, CampaignConfig, CampaignError, CampaignResult,
};
use crate::corpus::UNSCORED;
use crate::cover::{CoverageMap, MAP_SIZE};
use crate::descs::{descriptions_for, SyscallDesc};
use crate::dictionary::Dictionary;
use crate::directed::Direction;
use crate::fuzzer::{Finding, FuzzerStats, Strategy};
use crate::mutate::Mutator;
use crate::rng::SplitMix64;

/// Golden-ratio increment used to decorrelate per-iteration seeds (the
/// SplitMix64 stream constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Parallel engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker count (1 runs the same algorithm on one thread).
    pub workers: usize,
    /// Iterations per epoch (merge/snapshot period). Smaller epochs adopt
    /// novel inputs sooner; larger epochs synchronize less. Has no effect
    /// on *which* inputs or findings are reported for a fixed value — but
    /// is part of the seed-determinism contract, so comparing runs
    /// requires equal `epoch_len`.
    pub epoch_len: u64,
    /// Iterations claimed per scheduler grab (work-stealing granularity).
    pub chunk: u64,
    /// The underlying campaign parameters (iterations, seed, budgets).
    pub campaign: CampaignConfig,
    /// Records a merged event trace ([`TraceConfig::deterministic`] preset:
    /// execution events only, since translation-cache warmth differs per
    /// worker). Off by default; tracing never changes findings, corpus or
    /// coverage.
    pub trace: bool,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            workers: 1,
            epoch_len: 64,
            chunk: 8,
            campaign: CampaignConfig::default(),
            trace: false,
        }
    }
}

/// Aggregate statistics of a parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelStats {
    /// Worker threads used.
    pub workers: usize,
    /// Programs executed (minimization re-executions not counted).
    pub execs: u64,
    /// Corpus entries retained.
    pub corpus: usize,
    /// Coverage buckets reached (canonical global map).
    pub coverage: usize,
    /// Findings after canonical dedup.
    pub findings: usize,
    /// Epochs merged.
    pub epochs: u64,
    /// Wall-clock time of the fuzzing loop (sessions ready → last merge;
    /// excludes firmware build and boot).
    pub fuzz_wall: Duration,
    /// Translation-cache counters summed over all workers.
    pub cache: CacheStats,
    /// Shadow checks that fell off the inline fast path onto the byte-wise
    /// slow walk, summed over all workers.
    pub slow_path_checks: u64,
    /// Non-zero buckets in the shared atomic bitmap (live-published
    /// telemetry; equals `coverage` after the final merge).
    pub published_coverage: usize,
    /// `(min, mean)` static frontier distance in milli-edges over scored
    /// corpus entries. `None` for undirected runs (every score is
    /// [`UNSCORED`]) and before anything scored is retained.
    pub frontier: Option<(u32, u32)>,
    /// Bytes of the ready-point base image (RAM plus sanitizer planes) —
    /// paid once when workers share it, not per worker.
    pub base_bytes: u64,
    /// Largest per-iteration copy-on-write overlay any worker held
    /// (private dirty pages beyond the shared base): the per-worker
    /// incremental memory cost, O(pages touched) rather than O(RAM).
    pub max_worker_overlay_bytes: u64,
    /// Workers that forked from the shared base image (the rest kept a
    /// private baseline because their ready-state hash differed).
    pub workers_sharing_base: usize,
}

impl ParallelStats {
    /// Copies these stats into `registry` under the `scheduler` subsystem
    /// (plus the summed `translator` cache counters).
    ///
    /// Campaign results (execs, corpus, coverage, findings, epochs and the
    /// converged shared-bitmap coverage) are
    /// [`MetricClass::Deterministic`] — identical for every worker count.
    /// Wall time, the worker count itself and the summed per-worker cache
    /// counters depend on scheduling and are classed as telemetry.
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        use MetricClass::{Deterministic, Telemetry};
        registry.gauge("scheduler", "workers", Telemetry, self.workers as i64);
        registry.counter("scheduler", "execs", Deterministic, self.execs);
        registry.gauge("scheduler", "corpus", Deterministic, self.corpus as i64);
        registry.gauge("scheduler", "coverage", Deterministic, self.coverage as i64);
        registry.gauge("scheduler", "findings", Deterministic, self.findings as i64);
        registry.counter("scheduler", "epochs", Deterministic, self.epochs);
        registry.gauge(
            "scheduler",
            "published_coverage",
            Deterministic,
            self.published_coverage as i64,
        );
        registry.counter("scheduler", "fuzz_wall_ms", Telemetry, self.fuzz_wall.as_millis() as u64);
        if let Some((min, mean)) = self.frontier {
            registry.gauge("directed", "frontier_min_milli", Deterministic, i64::from(min));
            registry.gauge("directed", "frontier_mean_milli", Deterministic, i64::from(mean));
        }
        registry.counter("translator", "translations", Telemetry, self.cache.translations);
        registry.counter("translator", "hits", Telemetry, self.cache.hits);
        registry.counter("translator", "reconfigures", Telemetry, self.cache.reconfigures);
        registry.counter("translator", "generation_hits", Telemetry, self.cache.generation_hits);
        registry.counter(
            "translator",
            "generation_evictions",
            Telemetry,
            self.cache.generation_evictions,
        );
        registry.counter("translator", "flushes", Telemetry, self.cache.flushes);
        registry.counter(
            "translator",
            "chained_dispatches",
            Telemetry,
            self.cache.chained_dispatches,
        );
        registry.counter(
            "translator",
            "superblocks_formed",
            Telemetry,
            self.cache.superblocks_formed,
        );
        registry.counter("hooks", "slow_path_checks", Telemetry, self.slow_path_checks);
        // Memory accounting is telemetry: overlay peaks depend on which
        // iterations a worker happened to claim.
        registry.gauge("memory", "base_bytes", Telemetry, self.base_bytes as i64);
        registry.gauge(
            "memory",
            "max_worker_overlay_bytes",
            Telemetry,
            self.max_worker_overlay_bytes as i64,
        );
        registry.gauge(
            "memory",
            "workers_sharing_base",
            Telemetry,
            self.workers_sharing_base as i64,
        );
    }

    /// A metrics snapshot of these stats (see
    /// [`ParallelStats::collect_metrics`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut registry = MetricsRegistry::new();
        self.collect_metrics(&mut registry);
        registry.snapshot()
    }
}

/// Everything a parallel run produces.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// Findings in canonical (iteration) order, deduplicated by
    /// [`Report::dedup_key`].
    pub findings: Vec<Finding>,
    /// Final corpus in canonical admission order.
    pub corpus: Vec<ExecProgram>,
    /// Run statistics.
    pub stats: ParallelStats,
    /// Merged event trace in canonical iteration order (spans rebased to
    /// their iteration start, so the trace is identical for every worker
    /// count). `None` unless [`ParallelConfig::trace`] was set.
    pub trace: Option<MergedTrace>,
}

/// One iteration's shippable result.
struct IterResult {
    iter: u64,
    program: ExecProgram,
    cover: Vec<(u32, u8)>,
    findings: Vec<Finding>,
    /// Iteration-relative trace span (empty unless tracing is on).
    events: Vec<Event>,
}

/// Immutable per-epoch corpus view: programs plus their static-distance
/// scores (all [`UNSCORED`] in undirected runs).
struct Snapshot {
    programs: Vec<ExecProgram>,
    scores: Vec<u32>,
}

/// Merge-side state, owned by whichever worker leads each epoch barrier.
struct MergeState {
    global: Box<[u8; MAP_SIZE]>,
    corpus: Vec<ExecProgram>,
    /// Static-distance score per corpus entry, admission-ordered.
    scores: Vec<u32>,
    findings: Vec<Finding>,
    seen: HashSet<(BugClass, u32)>,
    execs: u64,
    epochs: u64,
    /// Merged event trace in canonical iteration order (when tracing).
    trace: Option<MergedTrace>,
}

/// State shared by all workers of one run.
struct Shared {
    stop: AtomicBool,
    /// Next unclaimed iteration (monotonic within an epoch; reset to the
    /// epoch floor at each merge).
    next_iter: AtomicU64,
    /// One past the last iteration of the current epoch.
    epoch_end: AtomicU64,
    /// Immutable corpus snapshot workers draw from this epoch.
    snapshot: Mutex<Arc<Snapshot>>,
    /// Completed iterations awaiting the canonical merge.
    results: Mutex<Vec<IterResult>>,
    merge: Mutex<MergeState>,
    error: Mutex<Option<CampaignError>>,
    /// Live-published classified coverage (telemetry only; see module doc).
    bitmap: Vec<AtomicU8>,
    barrier: Barrier,
    fuzz_start: Mutex<Option<Instant>>,
    /// Per-worker exit statistics, pushed as each worker finishes.
    worker_stats: Mutex<Vec<WorkerExit>>,
    /// First-published ready-point base image. The first worker to come up
    /// installs its base here; every later worker whose ready-state hash
    /// matches adopts it and runs as a copy-on-write fork, so N workers
    /// share one RAM + sanitizer-plane image.
    base: Mutex<Option<Arc<BaseImage>>>,
}

/// One worker's exit statistics.
struct WorkerExit {
    cache: CacheStats,
    slow_path_checks: u64,
    /// Largest post-iteration overlay this worker held (bytes).
    peak_overlay_bytes: u64,
    base_bytes: u64,
    /// Whether this worker forked from the shared base image.
    shares_base: bool,
}

/// The RNG for iteration `iter`: a pure function of the campaign seed and
/// the iteration index, independent of scheduling.
fn iter_rng(seed: u64, iter: u64) -> SplitMix64 {
    let mut mix = SplitMix64::seed_from_u64(seed ^ (iter + 1).wrapping_mul(GOLDEN));
    SplitMix64::seed_from_u64(mix.next_u64())
}

/// Derives iteration `iter`'s program from the epoch's corpus snapshot.
fn derive_program(
    mutator: &Mutator,
    snapshot: &Snapshot,
    direction: Option<&Direction>,
    seed: u64,
    iter: u64,
) -> ExecProgram {
    let mut rng = iter_rng(seed, iter);
    if snapshot.programs.is_empty() || rng.gen_bool(0.2) {
        mutator.generate(&mut rng)
    } else if let Some(direction) = direction {
        // Directed: distance-biased pick over the snapshot scores. The
        // iteration index is the anneal clock — unlike a live exec counter
        // it is a pure function of the schedule-independent iteration id.
        let index =
            direction.directed_pick(&snapshot.scores, iter, &mut rng).expect("non-empty snapshot");
        mutator.mutate(&snapshot.programs[index], &mut rng)
    } else {
        let pick = rng.gen_usize() % snapshot.programs.len();
        mutator.mutate(&snapshot.programs[pick], &mut rng)
    }
}

/// Runs `candidate` from the pristine snapshot and reports whether
/// `class` still fires (runtime dedup is off in parallel workers, so every
/// occurrence is visible).
fn reproduces(
    session: &mut Session,
    candidate: &ExecProgram,
    budget: u64,
    class: BugClass,
) -> Result<bool, SessionError> {
    session.reset()?;
    let outcome = session.run_program(candidate, budget)?;
    Ok(outcome.reports.iter().any(|r| r.class == class))
}

/// Call-level reproducer minimization, same greedy policy as the
/// sequential fuzzer's. Deterministic given the program and report.
fn minimize(
    session: &mut Session,
    program: &ExecProgram,
    report: &Report,
    budget: u64,
) -> Result<ExecProgram, SessionError> {
    let mut current = program.clone();
    let mut index = 0;
    while current.calls.len() > 1 && index < current.calls.len() {
        let mut candidate = current.clone();
        candidate.calls.remove(index);
        if reproduces(session, &candidate, budget, report.class)? {
            current = candidate;
        } else {
            index += 1;
        }
    }
    Ok(current)
}

/// Executes iteration `iter` end to end on a worker's private session.
fn run_iteration(
    session: &mut Session,
    coverage: &mut CoverageMap,
    mutator: &Mutator,
    snapshot: &Snapshot,
    direction: Option<&Direction>,
    config: &ParallelConfig,
    iter: u64,
) -> Result<IterResult, SessionError> {
    // Rebasing against the iteration-start clock makes the span a pure
    // function of (snapshot state, program): the lifetime clock itself is
    // monotonic across the worker's whole schedule.
    let mark = session.trace_mark();
    let program = derive_program(mutator, snapshot, direction, config.campaign.seed, iter);
    coverage.reset();
    session.reset()?;
    let budget = config.campaign.program_budget;
    let outcome = session.run_program_observed(&program, budget, coverage)?;
    let mut findings = Vec::new();
    for report in outcome.reports {
        let minimized = minimize(session, &program, &report, budget)?;
        let bug_syscalls =
            minimized.calls.iter().map(|c| c.nr).filter(|&nr| nr >= sys::BUG_BASE).collect();
        findings.push(Finding { report, program: minimized, bug_syscalls });
    }
    let events = session.drain_trace(mark);
    Ok(IterResult { iter, program, cover: coverage.classified_sparse(), findings, events })
}

/// The canonical merge: executed by the epoch leader while every other
/// worker waits at the barrier. Results are reduced sorted by iteration
/// index, so admission and dedup order is schedule-independent.
fn merge_epoch(shared: &Shared, config: &ParallelConfig, direction: Option<&Direction>) {
    let mut results = {
        let mut guard = shared.results.lock().unwrap();
        std::mem::take(&mut *guard)
    };
    results.sort_unstable_by_key(|r| r.iter);
    let mut state = shared.merge.lock().unwrap();
    for result in results {
        state.execs += 1;
        if CoverageMap::merge_classified(&mut state.global, &result.cover) > 0 {
            // Scoring uses the iteration's own sparse export, so the score
            // too is a pure function of the program — merge-order free.
            let score = match direction {
                Some(d) => d.score_sparse(&result.cover),
                None => UNSCORED,
            };
            state.corpus.push(result.program);
            state.scores.push(score);
        }
        for finding in result.findings {
            if state.seen.insert(finding.report.dedup_key()) {
                state.findings.push(finding);
            }
        }
        if let Some(trace) = &mut state.trace {
            trace.push_span(TraceSpan { iter: result.iter, events: result.events });
        }
    }
    state.epochs += 1;
    if state.trace.is_some() {
        // Record the canonical post-merge totals as a scheduler event. The
        // span is tagged with the epoch-end boundary, which totally orders
        // it after every iteration it merged.
        let merge = EventKind::EpochMerge {
            epoch: state.epochs,
            execs: state.execs,
            corpus: state.corpus.len() as u64,
            findings: state.findings.len() as u64,
            coverage: state.global.iter().filter(|&&b| b != 0).count() as u64,
        };
        let boundary = shared.epoch_end.load(Ordering::SeqCst);
        if let Some(trace) = &mut state.trace {
            trace.push_span(TraceSpan {
                iter: boundary,
                events: vec![Event { clock: 0, seq: 0, kind: merge }],
            });
        }
    }
    *shared.snapshot.lock().unwrap() =
        Arc::new(Snapshot { programs: state.corpus.clone(), scores: state.scores.clone() });
    let done = shared.epoch_end.load(Ordering::SeqCst);
    let failed = shared.error.lock().unwrap().is_some();
    if failed || done >= config.campaign.iterations {
        shared.stop.store(true, Ordering::SeqCst);
    } else {
        shared.next_iter.store(done, Ordering::SeqCst);
        shared
            .epoch_end
            .store((done + config.epoch_len).min(config.campaign.iterations), Ordering::SeqCst);
    }
}

/// Per-run mutation inputs shared (immutably) by every worker.
#[derive(Clone, Copy)]
struct WorkerSetup<'a> {
    descs: &'a [SyscallDesc],
    dict: &'a Dictionary,
    strategy: Strategy,
    direction: Option<&'a Direction>,
}

/// One worker thread: claim chunks, execute, publish, synchronize.
fn worker_loop<F>(
    worker: usize,
    factory: &F,
    setup: WorkerSetup<'_>,
    config: &ParallelConfig,
    shared: &Shared,
) where
    F: Fn(usize) -> Result<Session, CampaignError> + Sync,
{
    let WorkerSetup { descs, dict, strategy, direction } = setup;
    let mut session = match factory(worker) {
        Ok(mut session) => {
            // Canonical dedup happens at merge time; the runtime must
            // report every occurrence or finding sets would depend on
            // which worker saw a bug first.
            session.runtime_mut().dedup_enabled = false;
            session.enable_block_coverage();
            if config.trace {
                // Enabled after the factory's boot so spans hold only
                // iteration events; the deterministic preset skips cache
                // events, whose timing depends on per-worker warmth.
                session.enable_tracing(TraceConfig::deterministic());
            }
            // Publish-or-adopt the ready-point base image. Adoption swaps
            // the worker's private baseline for the shared one (hashes are
            // verified inside `adopt_base`; a mismatch keeps the private
            // copy, which is correct but costs a full RAM image). Findings
            // are unaffected either way: the adopted base is bit-identical
            // to the private one by construction.
            let published = {
                let mut base = shared.base.lock().unwrap();
                match base.as_ref() {
                    Some(base) => Some(Arc::clone(base)),
                    None => {
                        *base = session.base().cloned();
                        None
                    }
                }
            };
            if let Some(base) = published {
                if let Err(e) = session.adopt_base(&base) {
                    shared.error.lock().unwrap().get_or_insert(CampaignError::from(e));
                    shared.stop.store(true, Ordering::SeqCst);
                }
            }
            Some(session)
        }
        Err(e) => {
            shared.error.lock().unwrap().get_or_insert(e);
            shared.stop.store(true, Ordering::SeqCst);
            None
        }
    };
    let mut mutator = Mutator::new(descs.to_vec(), dict.clone(), strategy, 12);
    if let Some(direction) = direction {
        mutator.set_operands(direction.operands());
    }
    let mut coverage = CoverageMap::new();
    // Peak private overlay across the worker's schedule, sampled after
    // each iteration (a reset frees the overlay again, so end-of-run
    // sampling would always read ~0).
    let mut peak_overlay: usize = 0;

    if shared.barrier.wait().is_leader() {
        *shared.fuzz_start.lock().unwrap() = Some(Instant::now());
    }
    loop {
        let end = shared.epoch_end.load(Ordering::SeqCst);
        let snapshot = Arc::clone(&shared.snapshot.lock().unwrap());
        let mut batch = Vec::new();
        if let Some(session) = session.as_mut() {
            while !shared.stop.load(Ordering::Relaxed) {
                let start = shared.next_iter.fetch_add(config.chunk, Ordering::SeqCst);
                if start >= end {
                    break;
                }
                for iter in start..(start + config.chunk).min(end) {
                    match run_iteration(
                        session,
                        &mut coverage,
                        &mutator,
                        &snapshot,
                        direction,
                        config,
                        iter,
                    ) {
                        Ok(result) => {
                            for &(index, class) in &result.cover {
                                shared.bitmap[index as usize].fetch_or(class, Ordering::Relaxed);
                            }
                            peak_overlay = peak_overlay.max(session.overlay_bytes());
                            batch.push(result);
                        }
                        Err(e) => {
                            // Re-derive the failing program (pure function
                            // of seed and iteration) for the error context.
                            let program = derive_program(
                                &mutator,
                                &snapshot,
                                direction,
                                config.campaign.seed,
                                iter,
                            );
                            let err = CampaignError::from(e).context(iter, &program);
                            shared.error.lock().unwrap().get_or_insert(err);
                            shared.stop.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                }
            }
        }
        if !batch.is_empty() {
            shared.results.lock().unwrap().extend(batch);
        }
        if shared.barrier.wait().is_leader() {
            merge_epoch(shared, config, direction);
        }
        shared.barrier.wait();
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    if let Some(session) = &session {
        let shares_base = shared
            .base
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(|base| session.base().is_some_and(|own| Arc::ptr_eq(own, base)));
        shared.worker_stats.lock().unwrap().push(WorkerExit {
            cache: session.cache_stats(),
            slow_path_checks: session.runtime().slow_path_checks(),
            peak_overlay_bytes: peak_overlay as u64,
            base_bytes: session.base_bytes() as u64,
            shares_base,
        });
    }
}

/// Runs a parallel fuzzing campaign over sessions produced by `factory`.
///
/// `factory(worker_index)` must return a *ready* session (already past
/// `run_to_ready`); it is called once per worker, on that worker's thread,
/// because sessions are thread-affine. Every worker must get an
/// identically-behaving session (same firmware, same configuration) or the
/// determinism contract is void.
///
/// # Errors
///
/// Returns the first harness-level failure in canonical order of
/// discovery (session build or execution failures; guest crashes are
/// findings, not errors).
///
/// # Panics
///
/// Panics if `workers` is 0 or a worker thread panics.
pub fn run_parallel<F>(
    factory: F,
    descs: &[SyscallDesc],
    dict: &Dictionary,
    strategy: Strategy,
    config: &ParallelConfig,
) -> Result<ParallelOutcome, CampaignError>
where
    F: Fn(usize) -> Result<Session, CampaignError> + Sync,
{
    run_parallel_directed(factory, descs, dict, strategy, None, config)
}

/// [`run_parallel`] with optional directed-campaign steering. With
/// `direction` loaded, every worker scores retained entries by static
/// distance and anneals its picks toward the frontier; scores are part of
/// the canonical merge, so the determinism contract (same results for any
/// worker count) carries over unchanged. `None` is exactly [`run_parallel`].
///
/// # Errors
///
/// See [`run_parallel`].
///
/// # Panics
///
/// See [`run_parallel`].
pub fn run_parallel_directed<F>(
    factory: F,
    descs: &[SyscallDesc],
    dict: &Dictionary,
    strategy: Strategy,
    direction: Option<&Direction>,
    config: &ParallelConfig,
) -> Result<ParallelOutcome, CampaignError>
where
    F: Fn(usize) -> Result<Session, CampaignError> + Sync,
{
    assert!(config.workers > 0, "need at least one worker");
    assert!(config.epoch_len > 0 && config.chunk > 0, "degenerate scheduling parameters");
    let shared = Shared {
        stop: AtomicBool::new(false),
        next_iter: AtomicU64::new(0),
        epoch_end: AtomicU64::new(config.epoch_len.min(config.campaign.iterations)),
        snapshot: Mutex::new(Arc::new(Snapshot { programs: Vec::new(), scores: Vec::new() })),
        results: Mutex::new(Vec::new()),
        merge: Mutex::new(MergeState {
            global: Box::new([0; MAP_SIZE]),
            corpus: Vec::new(),
            scores: Vec::new(),
            findings: Vec::new(),
            seen: HashSet::new(),
            execs: 0,
            epochs: 0,
            trace: config.trace.then(MergedTrace::default),
        }),
        error: Mutex::new(None),
        bitmap: (0..MAP_SIZE).map(|_| AtomicU8::new(0)).collect(),
        barrier: Barrier::new(config.workers),
        fuzz_start: Mutex::new(None),
        worker_stats: Mutex::new(Vec::new()),
        base: Mutex::new(None),
    };
    if config.campaign.iterations == 0 {
        shared.stop.store(true, Ordering::SeqCst);
    }

    std::thread::scope(|scope| {
        for worker in 0..config.workers {
            let shared = &shared;
            let factory = &factory;
            scope.spawn(move || {
                let setup = WorkerSetup { descs, dict, strategy, direction };
                worker_loop(worker, factory, setup, config, shared);
            });
        }
    });

    if let Some(error) = shared.error.lock().unwrap().take() {
        return Err(error);
    }
    let fuzz_wall =
        shared.fuzz_start.lock().unwrap().map(|start| start.elapsed()).unwrap_or_default();
    let (cache, slow_path_checks, base_bytes, max_worker_overlay_bytes, workers_sharing_base) =
        shared.worker_stats.lock().unwrap().iter().fold(
            (CacheStats::default(), 0u64, 0u64, 0u64, 0usize),
            |(cache, slow, base, overlay, sharing), w| {
                (
                    cache.merged(w.cache),
                    slow + w.slow_path_checks,
                    base.max(w.base_bytes),
                    overlay.max(w.peak_overlay_bytes),
                    sharing + usize::from(w.shares_base),
                )
            },
        );
    let published_coverage =
        shared.bitmap.iter().filter(|b| b.load(Ordering::Relaxed) != 0).count();
    let state = shared.merge.into_inner().unwrap();
    let stats = ParallelStats {
        workers: config.workers,
        execs: state.execs,
        corpus: state.corpus.len(),
        coverage: state.global.iter().filter(|&&b| b != 0).count(),
        findings: state.findings.len(),
        epochs: state.epochs,
        fuzz_wall,
        cache,
        slow_path_checks,
        published_coverage,
        frontier: crate::directed::frontier(&state.scores),
        base_bytes,
        max_worker_overlay_bytes,
        workers_sharing_base,
    };
    Ok(ParallelOutcome {
        findings: state.findings,
        corpus: state.corpus,
        stats,
        trace: state.trace,
    })
}

/// Runs the parallel engine for one firmware in its Table-1 configuration
/// (the `embsan fuzz --workers N` path).
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_parallel_campaign(
    spec: &FirmwareSpec,
    config: &ParallelConfig,
) -> Result<(CampaignResult, ParallelOutcome), CampaignError> {
    run_parallel_campaign_directed(spec, None, config)
}

/// [`run_parallel_campaign`] with optional directed steering (the
/// `embsan fuzz --workers N --analysis ART` path).
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_parallel_campaign_directed(
    spec: &FirmwareSpec,
    direction: Option<&Direction>,
    config: &ParallelConfig,
) -> Result<(CampaignResult, ParallelOutcome), CampaignError> {
    let image = spec
        .build(spec.default_san_mode())
        .map_err(|e| CampaignError::from(e).with_firmware(spec.name))?;
    let dict = Dictionary::extract(&image);
    let descs = descriptions_for(spec);
    let strategy = match spec.fuzzer {
        PaperFuzzer::Syzkaller => Strategy::Syz,
        PaperFuzzer::Tardis => Strategy::Tardis,
    };
    let outcome = run_parallel_directed(
        |_worker| prepare_session(spec, &config.campaign).map(|(session, _)| session),
        &descs,
        &dict,
        strategy,
        direction,
        config,
    )
    .map_err(|e| e.with_firmware(spec.name))?;
    let found = attribute_findings(spec, &outcome.findings);
    let stats = outcome.stats;
    let result = CampaignResult {
        firmware: spec.name,
        found,
        stats: FuzzerStats {
            execs: stats.execs,
            corpus: stats.corpus,
            coverage: stats.coverage,
            findings: stats.findings,
        },
    };
    Ok((result, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_guestos::firmware_by_name;

    fn small_config(workers: usize, iterations: u64) -> ParallelConfig {
        ParallelConfig {
            workers,
            epoch_len: 32,
            chunk: 4,
            campaign: CampaignConfig { iterations, seed: 17, ..CampaignConfig::default() },
            trace: false,
        }
    }

    fn run(workers: usize) -> (Vec<usize>, usize, usize, u64) {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let (result, outcome) = run_parallel_campaign(spec, &small_config(workers, 96)).unwrap();
        (
            result.found.iter().map(|f| f.latent_index).collect(),
            outcome.stats.corpus,
            outcome.stats.coverage,
            outcome.stats.execs,
        )
    }

    #[test]
    fn two_workers_match_one_worker() {
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn zero_iterations_is_a_clean_noop() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let (result, outcome) = run_parallel_campaign(spec, &small_config(2, 0)).unwrap();
        assert_eq!(outcome.stats.execs, 0);
        assert!(result.found.is_empty());
    }

    #[test]
    fn published_bitmap_converges_to_merged_coverage() {
        // The shared atomic bitmap is telemetry while the run is live, but
        // after the final merge its union over all executed iterations must
        // equal the canonical coverage map's.
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let (_, outcome) = run_parallel_campaign(spec, &small_config(2, 64)).unwrap();
        assert!(outcome.stats.coverage > 0);
        assert_eq!(outcome.stats.published_coverage, outcome.stats.coverage);
        let snapshot = outcome.stats.metrics_snapshot();
        assert_eq!(
            snapshot.value("scheduler", "published_coverage"),
            Some(outcome.stats.coverage as i64),
        );
        assert_eq!(snapshot.value("scheduler", "execs"), Some(64));
    }

    #[test]
    fn tracing_yields_spans_without_changing_results() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let plain = run_parallel_campaign(spec, &small_config(1, 48)).unwrap();
        let mut traced_config = small_config(1, 48);
        traced_config.trace = true;
        let traced = run_parallel_campaign(spec, &traced_config).unwrap();
        assert_eq!(plain.1.stats.coverage, traced.1.stats.coverage);
        assert_eq!(plain.1.stats.corpus, traced.1.stats.corpus);
        assert_eq!(plain.1.stats.findings, traced.1.stats.findings);
        assert!(plain.1.trace.is_none());
        let trace = traced.1.trace.expect("trace requested");
        assert!(trace.event_count() > 0);
        let merges = trace
            .spans
            .iter()
            .flat_map(|s| &s.events)
            .filter(|e| matches!(e.kind, EventKind::EpochMerge { .. }))
            .count();
        assert_eq!(merges as u64, traced.1.stats.epochs);
    }

    #[test]
    fn iteration_rng_is_schedule_independent() {
        // Same (seed, iter) → same stream regardless of anything else.
        let mut a = iter_rng(42, 7);
        let mut b = iter_rng(42, 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = iter_rng(42, 8);
        assert_ne!(iter_rng(42, 7).next_u64(), c.next_u64());
    }
}
