//! OS-agnostic edge coverage from emulator block events.
//!
//! This is the Tardis-style collection path: the emulator reports every
//! translation-block entry; edges are hashed AFL-style from
//! `(previous block, current block)` pairs into a fixed bitmap. No guest
//! cooperation is required, which is exactly what makes it OS-agnostic.

use embsan_emu::cpu::CpuView;
use embsan_emu::hook::ExecHook;

/// Size of the edge bitmap (one byte per bucket, AFL-classic).
pub const MAP_SIZE: usize = 1 << 16;

/// An AFL-style edge-coverage bitmap that doubles as the emulator observer.
#[derive(Clone)]
pub struct CoverageMap {
    map: Box<[u8; MAP_SIZE]>,
    prev: [u32; 8],
    /// Buckets set since the last reset, one entry per zero→nonzero
    /// transition (counts saturate and never return to zero, so entries are
    /// unique). Firmware touches a few hundred buckets per execution;
    /// driving reset/merge/export off this list instead of scanning the
    /// full 64 KiB map keeps per-iteration bookkeeping proportional to
    /// actual coverage.
    touched: Vec<u32>,
}

impl std::fmt::Debug for CoverageMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoverageMap")
            .field("set_buckets", &self.count_set())
            .finish_non_exhaustive()
    }
}

impl Default for CoverageMap {
    fn default() -> CoverageMap {
        CoverageMap::new()
    }
}

impl CoverageMap {
    /// Creates an empty map.
    pub fn new() -> CoverageMap {
        CoverageMap { map: Box::new([0; MAP_SIZE]), prev: [0; 8], touched: Vec::new() }
    }

    /// Clears hit counts and edge history (call before each execution).
    /// Only touched buckets are cleared (every nonzero bucket is on the
    /// touched list by construction), so the cost tracks coverage, not map
    /// size.
    pub fn reset(&mut self) {
        for &index in &self.touched {
            self.map[index as usize] = 0;
        }
        self.touched.clear();
        self.prev = [0; 8];
    }

    #[inline]
    fn bump(&mut self, index: usize) {
        let bucket = &mut self.map[index];
        if *bucket == 0 {
            self.touched.push(index as u32);
        }
        *bucket = bucket.saturating_add(1);
    }

    /// Records an edge ending at block `pc` on `cpu`.
    pub fn record(&mut self, cpu: usize, pc: u32) {
        let cur = pc >> 2;
        let prev = self.prev[cpu & 7];
        let index = ((prev >> 1) ^ cur) as usize & (MAP_SIZE - 1);
        self.bump(index);
        self.prev[cpu & 7] = cur;
    }

    /// Records a kcov-style coverage identifier directly (PC/function-set
    /// semantics: no edge mixing, one bucket per identifier).
    pub fn record_id(&mut self, id: u32) {
        self.bump(id as usize & (MAP_SIZE - 1));
    }

    /// Number of non-zero buckets.
    pub fn count_set(&self) -> usize {
        self.touched.len()
    }

    /// Folds raw counts into AFL bucket classes (1, 2, 3, 4-7, 8-15, …).
    fn classify(count: u8) -> u8 {
        match count {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 4,
            4..=7 => 8,
            8..=15 => 16,
            16..=31 => 32,
            32..=127 => 64,
            _ => 128,
        }
    }

    /// Merges this execution's classified coverage into `global`, returning
    /// the number of buckets that gained a new class bit (novelty signal).
    pub fn merge_novel(&self, global: &mut [u8; MAP_SIZE]) -> usize {
        // Bucket updates are independent (distinct indices, OR-merge), so
        // walking the unordered touched list produces the same global map
        // and novelty count as a full ascending scan.
        let mut novel = 0;
        for &index in &self.touched {
            let bucket = &mut global[index as usize];
            let class = Self::classify(self.map[index as usize]);
            if class & !*bucket != 0 {
                novel += 1;
                *bucket |= class;
            }
        }
        novel
    }

    /// Exports this execution's classified coverage as a sparse
    /// `(bucket index, class bit)` list. Parallel workers ship these to the
    /// merge step instead of full 64 KiB maps; merging every export in
    /// iteration order via [`CoverageMap::merge_classified`] produces
    /// exactly the same global map as calling [`CoverageMap::merge_novel`]
    /// on the live maps in that order.
    pub fn classified_sparse(&self) -> Vec<(u32, u8)> {
        // Sorted so the export is byte-identical to the historical full-map
        // scan (ascending indices) — these lists land in deterministic
        // artifacts.
        let mut indices = self.touched.clone();
        indices.sort_unstable();
        indices.iter().map(|&index| (index, Self::classify(self.map[index as usize]))).collect()
    }

    /// Merges a sparse classified export (from
    /// [`CoverageMap::classified_sparse`]) into `global`, returning the
    /// number of buckets that gained a new class bit.
    pub fn merge_classified(global: &mut [u8; MAP_SIZE], sparse: &[(u32, u8)]) -> usize {
        let mut novel = 0;
        for &(index, class) in sparse {
            let bucket = &mut global[index as usize & (MAP_SIZE - 1)];
            if class & !*bucket != 0 {
                novel += 1;
                *bucket |= class;
            }
        }
        novel
    }
}

impl ExecHook for CoverageMap {
    fn block_enter(&mut self, cpu: &mut CpuView<'_>, pc: u32) {
        self.record(cpu.cpu_index(), pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_edges_not_blocks() {
        let mut cov = CoverageMap::new();
        cov.record(0, 0x1000);
        cov.record(0, 0x2000);
        cov.record(0, 0x1000);
        // Three distinct edges: (0→1000), (1000→2000), (2000→1000).
        assert_eq!(cov.count_set(), 3);
        // Same path again adds no new buckets but bumps counts.
        cov.record(0, 0x2000);
        assert_eq!(cov.count_set(), 3);
    }

    #[test]
    fn per_cpu_edge_history() {
        let mut a = CoverageMap::new();
        a.record(0, 0x1000);
        a.record(1, 0x2000); // cpu1's edge starts from its own prev (0)
        let mut b = CoverageMap::new();
        b.record(0, 0x1000);
        b.record(0, 0x2000); // same blocks, single-cpu chain
        assert_ne!(a.map[..], b.map[..]);
    }

    #[test]
    fn novelty_detection() {
        let mut global = [0u8; MAP_SIZE];
        let mut cov = CoverageMap::new();
        cov.record(0, 0x1000);
        cov.record(0, 0x2000);
        assert_eq!(cov.merge_novel(&mut global), 2);
        // Identical run: nothing new.
        assert_eq!(cov.merge_novel(&mut global), 0);
        // A loop executed many times changes the bucket class → novel again.
        for _ in 0..20 {
            cov.record(0, 0x1000);
            cov.record(0, 0x2000);
        }
        assert!(cov.merge_novel(&mut global) > 0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut cov = CoverageMap::new();
        cov.record(0, 0x1000);
        cov.reset();
        assert_eq!(cov.count_set(), 0);
        let mut global = [0u8; MAP_SIZE];
        assert_eq!(cov.merge_novel(&mut global), 0);
    }
}
