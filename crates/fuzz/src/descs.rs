//! Typed syscall descriptions (the Syzkaller-style interface model).
//!
//! A [`SyscallDesc`] gives the fuzzer the shape of each call: how many
//! arguments and what each one means. Argument kinds let generation and
//! mutation stay in sensible ranges (a slot index is 0–7, a size is a small
//! integer) while leaving [`ArgKind::Key`] arguments — the magic-gated
//! inputs real kernels are full of — to dictionary and byte mutation.

use embsan_guestos::executor::sys;
use embsan_guestos::FirmwareSpec;

/// The semantic kind of one syscall argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArgKind {
    /// An object-table slot (0–7).
    Slot,
    /// An allocation size.
    Size,
    /// A byte offset into an object.
    Offset,
    /// An arbitrary data value.
    Value,
    /// A magic/key value guarding deeper code paths.
    Key,
}

/// Description of one syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallDesc {
    /// Syscall number.
    pub nr: u8,
    /// Argument kinds, in order.
    pub args: Vec<ArgKind>,
}

impl SyscallDesc {
    fn new(nr: u8, args: &[ArgKind]) -> SyscallDesc {
        SyscallDesc { nr, args: args.to_vec() }
    }
}

/// The base interface shared by every OS flavour.
pub fn base_descriptions() -> Vec<SyscallDesc> {
    use ArgKind::*;
    vec![
        SyscallDesc::new(sys::NOP, &[]),
        SyscallDesc::new(sys::ECHO, &[Value]),
        SyscallDesc::new(sys::ALLOC, &[Size, Slot]),
        SyscallDesc::new(sys::FREE, &[Slot]),
        SyscallDesc::new(sys::WRITE, &[Slot, Offset, Value]),
        SyscallDesc::new(sys::READ, &[Slot, Offset]),
        SyscallDesc::new(sys::FILL, &[Slot, Value]),
        SyscallDesc::new(sys::COPY, &[Slot, Slot]),
        SyscallDesc::new(sys::STAT, &[]),
        SyscallDesc::new(sys::HASH, &[Value]),
    ]
}

/// Descriptions for a firmware: the base interface plus one key-guarded
/// syscall per seeded subsystem entry (the fuzzer knows the *interface*,
/// not the trigger values).
pub fn descriptions_for(spec: &FirmwareSpec) -> Vec<SyscallDesc> {
    let mut descs = base_descriptions();
    if spec.irq {
        // Interrupt-rich builds: arm the GPIO pattern generator / alarm
        // (period, both_edges, deferred) and drive the mainloop half of
        // the ISR/mainloop shared-counter race.
        descs.push(SyscallDesc::new(
            sys::IRQ_SETUP,
            &[ArgKind::Value, ArgKind::Value, ArgKind::Value],
        ));
        descs.push(SyscallDesc::new(sys::IRQ_LOAD, &[ArgKind::Value]));
    }
    for i in 0..spec.latent_bugs().len() {
        descs.push(SyscallDesc::new(sys::BUG_BASE + i as u8, &[ArgKind::Key]));
    }
    descs
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_guestos::firmware_by_name;

    #[test]
    fn base_interface_is_complete() {
        let descs = base_descriptions();
        assert_eq!(descs.len(), 10);
        assert!(descs.iter().all(|d| d.args.len() <= 4));
        // Numbers are unique and below the bug base.
        let mut nrs: Vec<u8> = descs.iter().map(|d| d.nr).collect();
        nrs.dedup();
        assert_eq!(nrs.len(), 10);
        assert!(nrs.iter().all(|&nr| nr < sys::BUG_BASE));
    }

    #[test]
    fn firmware_descriptions_cover_its_bugs() {
        let spec = firmware_by_name("OpenWRT-armvirt").unwrap();
        let descs = descriptions_for(spec);
        assert_eq!(descs.len(), 10 + 6);
        let keys: Vec<_> = descs.iter().filter(|d| d.args == [ArgKind::Key]).collect();
        assert_eq!(keys.len(), 6);
        assert_eq!(keys[0].nr, sys::BUG_BASE);
    }
}
