//! Deterministic fuzzing campaigns per firmware (the Table 3/4 driver).
//!
//! The paper runs 7-day campaigns; this driver scales that to a seeded,
//! bounded-iteration budget. Each firmware is built in its Table-1
//! configuration, probed in the matching mode (EMBSAN-C → compile-time,
//! open EMBSAN-D → dynamic-source, closed → dynamic-binary), fuzzed with
//! its assigned strategy, and the triaged findings are attributed back to
//! the seeded Table-4 bugs via their gated syscalls.

use embsan_core::probe::{probe, ProbeArtifacts, ProbeError, ProbeMode};
use embsan_core::report::BugClass;
use embsan_core::session::{Session, SessionError};
use embsan_guestos::bugs::LATENT_BUGS;
use embsan_guestos::executor::{sys, ExecProgram};
use embsan_guestos::firmware::Fuzzer as PaperFuzzer;
use embsan_guestos::FirmwareSpec;

use crate::descs::descriptions_for;
use crate::dictionary::Dictionary;
use crate::fuzzer::{Fuzzer, FuzzerConfig, FuzzerStats, Strategy};

/// Campaign configuration.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Fuzzing iterations (the scaled-down "7 days").
    pub iterations: u64,
    /// RNG seed.
    pub seed: u64,
    /// Boot budget in instructions.
    pub ready_budget: u64,
    /// Per-program execution budget in instructions.
    pub program_budget: u64,
    /// Model-free MMIO region as `(base, size)`: guest reads in it are
    /// answered from a per-iteration response stream derived from the
    /// program under test (see [`embsan_emu::ModelFreeMmio`]). `None`
    /// leaves the platform model as the only MMIO.
    pub model_free: Option<(u32, u32)>,
    /// Withholds the platform device window from the guest, so its MMIO
    /// accesses fall through to the model-free region — fuzzing firmware
    /// whose MMIO map is unknown. Requires `model_free` covering the
    /// window; programs are then delivered via the response stream and
    /// each execution ends on stream exhaustion or budget, never on
    /// mailbox completion.
    pub mmio_withheld: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            iterations: 12_000,
            seed: 0x0E1B_5A11,
            ready_budget: 200_000_000,
            program_budget: 3_000_000,
            model_free: None,
            mmio_withheld: false,
        }
    }
}

/// What failed at the harness level (guest crashes are findings, never
/// errors).
#[derive(Debug)]
pub enum CampaignErrorKind {
    /// Firmware build failure.
    Build(embsan_asm::LinkError),
    /// Probing failure.
    Probe(ProbeError),
    /// Session failure.
    Session(SessionError),
    /// Distiller failure.
    Distill(embsan_core::DistillError),
    /// Campaign-journal failure (supervised runs).
    Journal(crate::journal::JournalError),
}

impl std::fmt::Display for CampaignErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignErrorKind::Build(e) => write!(f, "firmware build failed: {e}"),
            CampaignErrorKind::Probe(e) => write!(f, "probing failed: {e}"),
            CampaignErrorKind::Session(e) => write!(f, "session failed: {e}"),
            CampaignErrorKind::Distill(e) => write!(f, "distilling failed: {e}"),
            CampaignErrorKind::Journal(e) => write!(f, "campaign journal failed: {e}"),
        }
    }
}

/// A campaign failure with enough context to reproduce it: which firmware,
/// at which iteration, executing which program. Context fields are filled
/// in as the error propagates outward (the innermost layers don't know
/// them), so any of them may be absent.
#[derive(Debug)]
pub struct CampaignError {
    /// The underlying failure.
    pub kind: CampaignErrorKind,
    /// Firmware name (campaigns) or image path (CLI runs), when known.
    pub firmware: Option<String>,
    /// Fuzzing iteration at which the failure occurred, when known.
    pub iteration: Option<u64>,
    /// The program being executed when the failure occurred, when known.
    pub program: Option<ExecProgram>,
}

impl CampaignError {
    /// Wraps a failure kind with no context yet.
    pub fn new(kind: CampaignErrorKind) -> CampaignError {
        CampaignError { kind, firmware: None, iteration: None, program: None }
    }

    /// Attaches the firmware name (kept if already set — the innermost
    /// attribution wins).
    #[must_use]
    pub fn with_firmware(self, firmware: &str) -> CampaignError {
        self.with_firmware_string(firmware.to_string())
    }

    /// [`CampaignError::with_firmware`] for owned names.
    #[must_use]
    pub fn with_firmware_string(mut self, firmware: String) -> CampaignError {
        self.firmware.get_or_insert(firmware);
        self
    }

    /// Attaches iteration and program context (kept if already set).
    #[must_use]
    pub fn context(mut self, iteration: u64, program: &ExecProgram) -> CampaignError {
        self.iteration.get_or_insert(iteration);
        self.program.get_or_insert_with(|| program.clone());
        self
    }
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(firmware) = &self.firmware {
            write!(f, " [firmware: {firmware}]")?;
        }
        if let Some(iteration) = self.iteration {
            write!(f, " [iteration: {iteration}]")?;
        }
        if let Some(program) = &self.program {
            let nrs: Vec<u8> = program.calls.iter().map(|c| c.nr).collect();
            write!(f, " [program: {} call(s) {nrs:?}]", program.calls.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            CampaignErrorKind::Build(e) => Some(e),
            CampaignErrorKind::Probe(e) => Some(e),
            CampaignErrorKind::Session(e) => Some(e),
            CampaignErrorKind::Distill(e) => Some(e),
            CampaignErrorKind::Journal(e) => Some(e),
        }
    }
}

impl From<embsan_asm::LinkError> for CampaignError {
    fn from(e: embsan_asm::LinkError) -> CampaignError {
        CampaignError::new(CampaignErrorKind::Build(e))
    }
}

impl From<ProbeError> for CampaignError {
    fn from(e: ProbeError) -> CampaignError {
        CampaignError::new(CampaignErrorKind::Probe(e))
    }
}

impl From<SessionError> for CampaignError {
    fn from(e: SessionError) -> CampaignError {
        CampaignError::new(CampaignErrorKind::Session(e))
    }
}

impl From<embsan_core::DistillError> for CampaignError {
    fn from(e: embsan_core::DistillError) -> CampaignError {
        CampaignError::new(CampaignErrorKind::Distill(e))
    }
}

impl From<crate::journal::JournalError> for CampaignError {
    fn from(e: crate::journal::JournalError) -> CampaignError {
        CampaignError::new(CampaignErrorKind::Journal(e))
    }
}

/// One campaign-confirmed bug.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// Index into [`LATENT_BUGS`] (the paper's Table 4 row).
    pub latent_index: usize,
    /// Location string from Table 4.
    pub location: &'static str,
    /// Detected class.
    pub class: BugClass,
    /// Minimized reproducer.
    pub reproducer: ExecProgram,
}

/// The result of one firmware's campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// Firmware name.
    pub firmware: &'static str,
    /// Found bugs, deduplicated by Table-4 identity, in discovery order.
    pub found: Vec<FoundBug>,
    /// Fuzzer statistics.
    pub stats: FuzzerStats,
}

/// The probe mode matching a firmware's Table-1 row.
pub fn probe_mode_for(spec: &FirmwareSpec) -> ProbeMode {
    if spec.embsan_c {
        ProbeMode::CompileTime
    } else if spec.open_source {
        ProbeMode::DynamicSource
    } else {
        ProbeMode::DynamicBinary
    }
}

/// Prepares a ready session for a firmware in its Table-1 configuration.
///
/// # Errors
///
/// Propagates build, probe and session errors.
pub fn prepare_session(
    spec: &FirmwareSpec,
    config: &CampaignConfig,
) -> Result<(Session, Dictionary), CampaignError> {
    let image = spec.build(spec.default_san_mode())?;
    let artifacts: ProbeArtifacts = probe(&image, probe_mode_for(spec), None)?;
    let sanitizers = embsan_core::reference_specs()?;
    let cpus = if spec.needs_smp() { 2 } else { 1 };
    let mut session = Session::with_cpus(&image, &sanitizers, &artifacts, cpus)?;
    if let Some((base, size)) = config.model_free {
        // Before run_to_ready, so the boot-time refinement state is part of
        // the reset snapshot and every iteration replays it identically.
        session.enable_model_free(base, size, config.mmio_withheld);
    }
    session.run_to_ready(config.ready_budget)?;
    let dict = Dictionary::extract(&image);
    Ok((session, dict))
}

/// Runs the campaign for one firmware.
///
/// # Errors
///
/// See [`CampaignError`].
pub fn run_campaign(
    spec: &FirmwareSpec,
    config: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    let (mut session, dict) =
        prepare_session(spec, config).map_err(|e| e.with_firmware(spec.name))?;
    let strategy = match spec.fuzzer {
        PaperFuzzer::Syzkaller => Strategy::Syz,
        PaperFuzzer::Tardis => Strategy::Tardis,
    };
    let mut fuzzer_config = FuzzerConfig::new(strategy, config.seed);
    fuzzer_config.program_budget = config.program_budget;
    let descs = descriptions_for(spec);
    let mut fuzzer = Fuzzer::new(&mut session, descs, dict, fuzzer_config);
    fuzzer.run(config.iterations).map_err(|e| CampaignError::from(e).with_firmware(spec.name))?;
    let stats = fuzzer.stats();
    let found = attribute_findings(spec, fuzzer.findings());
    Ok(CampaignResult { firmware: spec.name, found, stats })
}

/// Attributes triaged findings to Table-4 rows via the gated syscalls left
/// in the minimized reproducers, deduplicated by Table-4 identity (§4.2).
pub fn attribute_findings(
    spec: &FirmwareSpec,
    findings: &[crate::fuzzer::Finding],
) -> Vec<FoundBug> {
    let firmware_bugs = spec.latent_bugs();
    let mut found: Vec<FoundBug> = Vec::new();
    for finding in findings {
        for nr in &finding.bug_syscalls {
            let local_index = usize::from(nr - sys::BUG_BASE);
            let Some(bug) = firmware_bugs.get(local_index) else { continue };
            let Some(latent_index) = LATENT_BUGS
                .iter()
                .position(|l| l.firmware == spec.name && l.location == bug.location)
            else {
                continue;
            };
            if found.iter().any(|f| f.latent_index == latent_index) {
                continue; // deduplicated (§4.2)
            }
            found.push(FoundBug {
                latent_index,
                location: LATENT_BUGS[latent_index].location,
                class: finding.report.class,
                reproducer: finding.program.clone(),
            });
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_guestos::firmware_by_name;

    #[test]
    fn probe_modes_match_table1() {
        assert_eq!(
            probe_mode_for(firmware_by_name("OpenWRT-armvirt").unwrap()),
            ProbeMode::CompileTime
        );
        assert_eq!(
            probe_mode_for(firmware_by_name("OpenWRT-bcm63xx").unwrap()),
            ProbeMode::DynamicSource
        );
        assert_eq!(
            probe_mode_for(firmware_by_name("TP-Link WDR-7660").unwrap()),
            ProbeMode::DynamicBinary
        );
    }

    /// End-to-end campaign smoke test on the smallest target: the
    /// closed-source VxWorks firmware, probed binary-only, fuzzed
    /// Tardis-style. A short run must at least boot, fuzz and attribute
    /// without errors; finding both bugs is the (longer) bench's job.
    #[test]
    fn campaign_smoke_on_closed_firmware() {
        let spec = firmware_by_name("TP-Link WDR-7660").unwrap();
        let config = CampaignConfig { iterations: 400, seed: 5, ..CampaignConfig::default() };
        let result = run_campaign(spec, &config).unwrap();
        assert_eq!(result.firmware, "TP-Link WDR-7660");
        assert_eq!(result.stats.execs, 400);
        for bug in &result.found {
            assert!(LATENT_BUGS[bug.latent_index].firmware == spec.name);
        }
    }

    /// The campaign driver is deterministic: same seed, same findings.
    #[test]
    fn campaign_is_deterministic() {
        let spec = firmware_by_name("OpenHarmony-stm32mp1").unwrap();
        let config = CampaignConfig { iterations: 300, seed: 11, ..CampaignConfig::default() };
        let a = run_campaign(spec, &config).unwrap();
        let b = run_campaign(spec, &config).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            a.found.iter().map(|f| f.latent_index).collect::<Vec<_>>(),
            b.found.iter().map(|f| f.latent_index).collect::<Vec<_>>()
        );
    }
}
