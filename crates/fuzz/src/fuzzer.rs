//! The coverage-guided fuzzing loop with crash triage.

use embsan_core::report::{BugClass, Report};
use embsan_core::session::{ExecOutcome, Session, SessionError};
use embsan_guestos::executor::{sys, ExecProgram};

use crate::corpus::{Corpus, UNSCORED};
use crate::cover::{CoverageMap, MAP_SIZE};
use crate::descs::SyscallDesc;
use crate::dictionary::Dictionary;
use crate::directed::Direction;
use crate::mutate::Mutator;
use crate::rng::SplitMix64;

/// Where execution coverage comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageSource {
    /// OS-agnostic edge coverage from the emulator's translation-block
    /// events (the Tardis mechanism; the default).
    Emulator,
    /// kcov-style guest-assisted coverage from the firmware's coverage-port
    /// beacons (requires a build with `BuildOptions::kcov`). Function-entry
    /// granular — too coarse to climb intra-function branch stages, which
    /// is exactly what the coverage-source ablation demonstrates.
    Guest,
}

/// Fuzzing strategy (which paper fuzzer is modelled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Syzkaller-style: typed syscall descriptions.
    Syz,
    /// Tardis-style: interface shape only, emulator-side coverage.
    Tardis,
}

/// Fuzzer configuration.
#[derive(Debug, Clone, Copy)]
pub struct FuzzerConfig {
    /// RNG seed (runs are fully deterministic under a seed).
    pub seed: u64,
    /// Strategy.
    pub strategy: Strategy,
    /// Instruction budget per program execution.
    pub program_budget: u64,
    /// Maximum calls per generated/mutated program.
    pub max_calls: usize,
    /// Run the deterministic dictionary stage on new corpus entries
    /// (disable for ablation studies).
    pub deterministic_stage: bool,
    /// Coverage collection mechanism.
    pub coverage_source: CoverageSource,
}

impl FuzzerConfig {
    /// Defaults for a strategy.
    pub fn new(strategy: Strategy, seed: u64) -> FuzzerConfig {
        FuzzerConfig {
            seed,
            strategy,
            program_budget: 3_000_000,
            max_calls: 12,
            deterministic_stage: true,
            coverage_source: CoverageSource::Emulator,
        }
    }
}

/// Aggregate fuzzing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzerStats {
    /// Programs executed.
    pub execs: u64,
    /// Corpus entries retained.
    pub corpus: usize,
    /// Coverage buckets reached.
    pub coverage: usize,
    /// Findings (deduplicated, minimized).
    pub findings: usize,
}

/// One triaged finding: a sanitizer report with its minimized reproducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The sanitizer report.
    pub report: Report,
    /// The minimized reproducer program.
    pub program: ExecProgram,
    /// Bug-syscall numbers remaining in the reproducer (attribution).
    pub bug_syscalls: Vec<u8>,
}

/// What a [`Fuzzer::commit`] did, for supervisor journaling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitSummary {
    /// Whether the program was retained in the corpus (novel coverage).
    pub retained: bool,
    /// Index range of findings appended by this commit.
    pub new_findings: std::ops::Range<usize>,
}

/// The complete mutable fuzzer state, exported for campaign journaling.
///
/// Everything that influences future iterations is here — RNG state, the
/// corpus with its global coverage map, the deterministic-stage queue and
/// its dedup set, findings, and the session runtime's report-dedup keys —
/// so a killed campaign resumed from a checkpoint continues bit-identically
/// to one that was never killed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzerState {
    /// Raw SplitMix64 state.
    pub rng_state: u64,
    /// Programs executed so far.
    pub execs: u64,
    /// Corpus programs in retention order.
    pub corpus_entries: Vec<ExecProgram>,
    /// Global classified coverage map (MAP_SIZE bytes).
    pub global_map: Vec<u8>,
    /// Pending deterministic-stage candidates (popped from the back).
    pub det_pending: Vec<ExecProgram>,
    /// Deterministic-stage sites already enumerated, sorted canonically.
    pub det_seen: Vec<(u8, u32, u32)>,
    /// Triaged findings so far.
    pub findings: Vec<Finding>,
    /// Session-runtime report-dedup keys, sorted canonically.
    pub dedup_keys: Vec<(BugClass, u32, u64)>,
}

/// A coverage-guided fuzzer bound to a sanitized session.
pub struct Fuzzer<'s> {
    session: &'s mut Session,
    mutator: Mutator,
    corpus: Corpus,
    coverage: CoverageMap,
    rng: SplitMix64,
    config: FuzzerConfig,
    findings: Vec<Finding>,
    execs: u64,
    dict_bytes: Vec<u8>,
    /// Syscall numbers carrying `Key` arguments (deterministic-stage focus
    /// under the Syz strategy).
    key_nrs: Vec<u8>,
    /// Pending deterministic-stage candidates (expanded from newly
    /// retained corpus entries).
    det_pending: Vec<ExecProgram>,
    /// Sites already enumerated by the deterministic stage, keyed by
    /// `(syscall, argument index, current value)`: corpus entries that
    /// differ only in coverage counts would otherwise re-expand identical
    /// candidate sets and starve the queue.
    det_seen: std::collections::HashSet<(u8, usize, u32)>,
    /// Directed-campaign steering, when an analysis artifact is loaded.
    /// `None` leaves scheduling and mutation bit-identical to the
    /// undirected fuzzer.
    direction: Option<Direction>,
}

impl std::fmt::Debug for Fuzzer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fuzzer").field("stats", &self.stats()).finish_non_exhaustive()
    }
}

impl<'s> Fuzzer<'s> {
    /// Creates a fuzzer over a ready session.
    ///
    /// The session must already have passed [`Session::run_to_ready`];
    /// block-coverage probes are armed here.
    pub fn new(
        session: &'s mut Session,
        descs: Vec<SyscallDesc>,
        dict: Dictionary,
        config: FuzzerConfig,
    ) -> Fuzzer<'s> {
        match config.coverage_source {
            CoverageSource::Emulator => session.enable_block_coverage(),
            CoverageSource::Guest => {
                session.machine_mut().bus_mut().devices.cov.set_enabled(true);
            }
        }
        let dict_bytes = dict.bytes();
        let key_nrs: Vec<u8> = descs
            .iter()
            .filter(|d| d.args.contains(&crate::descs::ArgKind::Key))
            .map(|d| d.nr)
            .collect();
        Fuzzer {
            session,
            mutator: Mutator::new(descs, dict, config.strategy, config.max_calls),
            corpus: Corpus::new(),
            coverage: CoverageMap::new(),
            rng: SplitMix64::seed_from_u64(config.seed),
            config,
            findings: Vec::new(),
            execs: 0,
            dict_bytes,
            key_nrs,
            det_pending: Vec::new(),
            det_seen: std::collections::HashSet::new(),
            direction: None,
        }
    }

    /// Loads directed-campaign steering: corpus entries are scored by
    /// static distance, scheduling anneals toward the frontier, and the
    /// harvested comparison operands join the mutator's dictionary pool
    /// and the deterministic stage.
    pub fn set_direction(&mut self, direction: Direction) {
        self.mutator.set_operands(direction.operands());
        self.direction = Some(direction);
    }

    /// `(min, mean)` static frontier distance over scored corpus entries
    /// in milli-edges, `None` while nothing scored (or undirected).
    pub fn frontier_distance(&self) -> Option<(u32, u32)> {
        crate::directed::frontier(self.corpus.scores())
    }

    /// Current statistics.
    pub fn stats(&self) -> FuzzerStats {
        FuzzerStats {
            execs: self.execs,
            corpus: self.corpus.len(),
            coverage: self.corpus.coverage_buckets(),
            findings: self.findings.len(),
        }
    }

    /// The triaged findings so far.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Consumes the fuzzer, returning its findings.
    pub fn into_findings(self) -> Vec<Finding> {
        self.findings
    }

    /// Runs `iterations` fuzzing iterations.
    ///
    /// # Errors
    ///
    /// Propagates session failures (which indicate harness bugs, not
    /// guest crashes — guest faults are findings).
    pub fn run(&mut self, iterations: u64) -> Result<(), SessionError> {
        for _ in 0..iterations {
            let program = self.next_program();
            self.execute_one(&program)?;
        }
        Ok(())
    }

    /// Chooses the next program to execute. Deterministic given the fuzzer
    /// state: the deterministic-stage queue is drained first (AFL's
    /// deterministic phase — bounded, systematically enumerating dictionary
    /// bytes over the new seed's arguments), then generation vs. corpus
    /// mutation is an RNG draw.
    pub fn next_program(&mut self) -> ExecProgram {
        if let Some(candidate) = self.det_pending.pop() {
            candidate
        } else if self.corpus.is_empty() || self.rng.gen_bool(0.2) {
            self.mutator.generate(&mut self.rng)
        } else if let Some(direction) = &self.direction {
            // Directed: annealed distance-biased pick over entry scores.
            let index = direction
                .directed_pick(self.corpus.scores(), self.execs, &mut self.rng)
                .expect("non-empty corpus");
            let seed = self.corpus.entries()[index].clone();
            self.mutator.mutate(&seed, &mut self.rng)
        } else {
            let pick = self.rng.gen_usize();
            // Infallible: this branch is only reached when `corpus.is_empty()`
            // was false, and nothing in between mutates the corpus.
            let seed = self.corpus.pick(pick).expect("non-empty corpus").clone();
            self.mutator.mutate(&seed, &mut self.rng)
        }
    }

    /// Expands the deterministic dictionary stage for a newly retained
    /// seed: every dictionary byte substituted into the low two byte
    /// positions of every eligible argument. Under the Syz strategy only
    /// `Key`-carrying syscalls are eligible (the descriptions say where
    /// magic values live); Tardis enumerates every argument.
    fn expand_deterministic(&mut self, seed: &ExecProgram) {
        for (call_index, call) in seed.calls.iter().enumerate() {
            if self.config.strategy == Strategy::Syz && !self.key_nrs.contains(&call.nr) {
                continue;
            }
            for arg_index in 0..call.args.len() {
                if !self.det_seen.insert((call.nr, arg_index, call.args[arg_index])) {
                    continue; // this site/value was already enumerated
                }
                for shift in [0u32, 8] {
                    for &byte in &self.dict_bytes {
                        let mut candidate = seed.clone();
                        let arg = &mut candidate.calls[call_index].args[arg_index];
                        *arg = (*arg & !(0xFF << shift)) | (u32::from(byte) << shift);
                        self.det_pending.push(candidate);
                    }
                }
                // Directed campaigns additionally substitute each harvested
                // comparison operand whole — byte-wise splicing cannot build
                // a multi-piece constant one stage at a time because a wide
                // gate has no intermediate stages to reward.
                if let Some(direction) = &self.direction {
                    for &operand in direction.operands() {
                        let mut candidate = seed.clone();
                        candidate.calls[call_index].args[arg_index] = operand;
                        self.det_pending.push(candidate);
                    }
                }
            }
        }
        // Bound the queue: drop the oldest work beyond a generous cap
        // (newest candidates are popped first — depth-first behaviour).
        const DET_CAP: usize = 16384;
        if self.det_pending.len() > DET_CAP {
            let excess = self.det_pending.len() - DET_CAP;
            self.det_pending.drain(..excess);
        }
    }

    /// Executes one program end to end: raw run, then commit. The plain
    /// (unsupervised) iteration step.
    ///
    /// # Errors
    ///
    /// Propagates session failures.
    pub fn execute_one(&mut self, program: &ExecProgram) -> Result<(), SessionError> {
        let outcome = self.run_raw(program)?;
        self.commit(program, outcome)?;
        Ok(())
    }

    /// Resets the session and runs `program` once, collecting coverage into
    /// the per-run map, *without* committing anything to the corpus or the
    /// findings. Supervisors use this to inspect the outcome (wedged? slow?)
    /// before deciding whether to [`Fuzzer::commit`], retry, or quarantine.
    ///
    /// # Errors
    ///
    /// Propagates session failures.
    pub fn run_raw(&mut self, program: &ExecProgram) -> Result<ExecOutcome, SessionError> {
        self.coverage.reset();
        self.session.reset()?;
        // Model-free MMIO stream installation happens inside
        // `run_program_observed` — the stream is a pure function of the
        // program, so refinement depends only on (firmware, seed).
        let Fuzzer { session, coverage, .. } = self;
        let outcome =
            session.run_program_observed(program, self.config.program_budget, coverage)?;
        if self.config.coverage_source == CoverageSource::Guest {
            for id in self.session.machine_mut().bus_mut().devices.cov.take_edges() {
                self.coverage.record_id(id);
            }
        }
        self.execs += 1;
        Ok(outcome)
    }

    /// Commits a [`Fuzzer::run_raw`] outcome: corpus novelty gating,
    /// deterministic-stage expansion, and crash triage with minimization.
    /// Returns whether the program was retained and how many findings it
    /// produced (so a supervisor can journal both).
    ///
    /// # Errors
    ///
    /// Propagates session failures from reproducer minimization.
    pub fn commit(
        &mut self,
        program: &ExecProgram,
        outcome: ExecOutcome,
    ) -> Result<CommitSummary, SessionError> {
        // Directed campaigns score the entry by the minimum static distance
        // over its covered edge buckets; undirected ones skip the export.
        let score = match &self.direction {
            Some(direction) => direction.score_sparse(&self.coverage.classified_sparse()),
            None => UNSCORED,
        };
        let retained = self.corpus.add_if_novel_scored(program, &self.coverage, score);
        if retained && self.config.deterministic_stage {
            self.expand_deterministic(program);
        }
        let first_finding = self.findings.len();
        for report in outcome.reports {
            let minimized = self.minimize(program, &report)?;
            let bug_syscalls =
                minimized.calls.iter().map(|c| c.nr).filter(|&nr| nr >= sys::BUG_BASE).collect();
            self.findings.push(Finding { report, program: minimized, bug_syscalls });
        }
        Ok(CommitSummary { retained, new_findings: first_finding..self.findings.len() })
    }

    /// The session driving this fuzzer (supervisors need machine access for
    /// hang classification and snapshot-restore recovery).
    pub fn session_mut(&mut self) -> &mut Session {
        self.session
    }

    /// Removes every copy of `program` from the corpus and the
    /// deterministic-stage queue (input quarantine: the input repeatedly
    /// wedged the guest, so it must never be scheduled or mutated again).
    /// The coverage it contributed stays — the coverage was real.
    pub fn quarantine(&mut self, program: &ExecProgram) {
        self.corpus.retain(|entry| entry != program);
        self.det_pending.retain(|entry| entry != program);
    }

    /// Exports the complete mutable fuzzer state for journaling. Together
    /// with a deterministically rebuilt session, importing this state
    /// resumes the campaign bit-identically.
    pub fn export_state(&self) -> FuzzerState {
        let mut det_seen: Vec<(u8, u32, u32)> =
            self.det_seen.iter().map(|&(nr, idx, val)| (nr, idx as u32, val)).collect();
        det_seen.sort_unstable();
        FuzzerState {
            rng_state: self.rng.state(),
            execs: self.execs,
            corpus_entries: self.corpus.entries().to_vec(),
            global_map: self.corpus.global_map().to_vec(),
            det_pending: self.det_pending.clone(),
            det_seen,
            findings: self.findings.clone(),
            dedup_keys: self.session.runtime().dedup_keys(),
        }
    }

    /// Restores state exported by [`Fuzzer::export_state`], including
    /// re-seeding the session runtime's report deduplication.
    ///
    /// Silently ignores a wrong-sized coverage map (it only costs novelty
    /// precision, never correctness).
    pub fn import_state(&mut self, state: FuzzerState) {
        self.rng = SplitMix64::seed_from_u64(state.rng_state);
        self.execs = state.execs;
        let mut global = Box::new([0u8; MAP_SIZE]);
        if state.global_map.len() == MAP_SIZE {
            global.copy_from_slice(&state.global_map);
        }
        self.corpus = Corpus::from_parts(state.corpus_entries, global);
        self.det_pending = state.det_pending;
        self.det_seen =
            state.det_seen.into_iter().map(|(nr, idx, val)| (nr, idx as usize, val)).collect();
        self.findings = state.findings;
        self.session.runtime_mut().seed_dedup(state.dedup_keys);
    }

    /// Checks whether `candidate` still reproduces `report`'s bug class.
    fn reproduces(
        &mut self,
        candidate: &ExecProgram,
        report: &Report,
    ) -> Result<bool, SessionError> {
        self.session.runtime_mut().dedup_enabled = false;
        self.session.reset()?;
        let outcome = self.session.run_program(candidate, self.config.program_budget);
        self.session.runtime_mut().dedup_enabled = true;
        let outcome = outcome?;
        Ok(outcome.reports.iter().any(|r| r.class == report.class))
    }

    /// Call-level reproducer minimization ("all found bugs are
    /// reproducible", §4.2): greedily drop calls while the report class
    /// persists.
    fn minimize(
        &mut self,
        program: &ExecProgram,
        report: &Report,
    ) -> Result<ExecProgram, SessionError> {
        let mut current = program.clone();
        let mut index = 0;
        while current.calls.len() > 1 && index < current.calls.len() {
            let mut candidate = current.clone();
            candidate.calls.remove(index);
            if self.reproduces(&candidate, report)? {
                current = candidate;
            } else {
                index += 1;
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_core::probe::{probe, ProbeMode};
    use embsan_core::reference_specs;
    use embsan_core::report::BugClass;
    use embsan_emu::profile::Arch;
    use embsan_guestos::bugs::{BugKind, BugSpec};
    use embsan_guestos::{os, BuildOptions, SanMode};

    fn ready_session(bugs: &[BugSpec]) -> (Session, embsan_asm::FirmwareImage) {
        ready_session_opts(BuildOptions::new(Arch::Armv).san(SanMode::SanCall), bugs)
    }

    fn ready_session_opts(
        opts: BuildOptions,
        bugs: &[BugSpec],
    ) -> (Session, embsan_asm::FirmwareImage) {
        let image = os::emblinux::build(&opts, bugs).unwrap();
        let specs = reference_specs().unwrap();
        let artifacts = probe(&image, ProbeMode::CompileTime, None).unwrap();
        let mut session = Session::new(&image, &specs, &artifacts).unwrap();
        session.run_to_ready(100_000_000).unwrap();
        (session, image)
    }

    fn descs_with_bugs(n: usize) -> Vec<SyscallDesc> {
        let mut descs = crate::descs::base_descriptions();
        for i in 0..n {
            descs.push(SyscallDesc {
                nr: sys::BUG_BASE + i as u8,
                args: vec![crate::descs::ArgKind::Key],
            });
        }
        descs
    }

    /// The headline capability test: a coverage-guided fuzzer with a
    /// binary-extracted dictionary finds a staged magic-gated bug that
    /// blind generation cannot hit, and EMBSAN reports it.
    #[test]
    fn fuzzer_finds_gated_bug_with_dictionary() {
        let bug = BugSpec::new("fuzz/target", BugKind::OobWrite);
        let (mut session, image) = ready_session(std::slice::from_ref(&bug));
        let dict = Dictionary::extract(&image);
        let config = FuzzerConfig::new(Strategy::Syz, 42);
        let mut fuzzer = Fuzzer::new(&mut session, descs_with_bugs(1), dict, config);
        // Generous but bounded budget; the staged gates need coverage
        // feedback to climb.
        let mut found = false;
        for _ in 0..60 {
            fuzzer.run(250).unwrap();
            if !fuzzer.findings().is_empty() {
                found = true;
                break;
            }
        }
        assert!(found, "stats: {:?}", fuzzer.stats());
        let finding = &fuzzer.findings()[0];
        assert_eq!(finding.report.class, BugClass::HeapOob);
        // Triage minimized the reproducer down to the trigger call.
        assert_eq!(finding.program.calls.len(), 1);
        assert_eq!(finding.bug_syscalls, vec![sys::BUG_BASE]);
    }

    /// The directed-fuzzing capability test: a wide (single-comparison,
    /// multi-byte) gate has no intermediate stages for coverage feedback to
    /// climb, so the staged-dictionary fuzzer stays blind — but the
    /// analysis artifact's harvested comparison operand opens it.
    #[test]
    fn fuzzer_finds_gated_bug_with_harvested_operand() {
        let bug = BugSpec::new("fuzz/wide", BugKind::OobWrite);
        let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall).wide_gates(true);
        let (mut session, image) = ready_session_opts(opts, std::slice::from_ref(&bug));
        let artifact = embsan_analysis::AnalysisArtifact::from_image(&image);
        let handler = image.symbol("sys_bug_0").unwrap();
        let direction = crate::directed::Direction::from_artifact(&artifact, &[handler]).unwrap();
        let key = embsan_guestos::bugs::wide_trigger_key("fuzz/wide");
        assert!(direction.operands().contains(&key), "wide key must be harvested");

        let dict = Dictionary::extract(&image);
        let config = FuzzerConfig::new(Strategy::Syz, 42);
        let mut fuzzer = Fuzzer::new(&mut session, descs_with_bugs(1), dict.clone(), config);
        fuzzer.set_direction(direction);
        let mut found = false;
        for _ in 0..60 {
            fuzzer.run(250).unwrap();
            if !fuzzer.findings().is_empty() {
                found = true;
                break;
            }
        }
        assert!(found, "directed stats: {:?}", fuzzer.stats());
        let finding = &fuzzer.findings()[0];
        assert_eq!(finding.report.class, BugClass::HeapOob);
        assert_eq!(finding.bug_syscalls, vec![sys::BUG_BASE]);
        // Scored entries expose a frontier once the corpus is directed.
        assert!(fuzzer.frontier_distance().is_some());

        // Control: the immediate-only dictionary never reassembles the
        // 4-byte key (both halves require a lui+ori pair), so an undirected
        // fuzzer with the same budget finds nothing behind the wide gate.
        let mut control = Fuzzer::new(
            &mut session,
            descs_with_bugs(1),
            dict,
            FuzzerConfig::new(Strategy::Syz, 42),
        );
        control.run(4000).unwrap();
        assert!(
            control.findings().is_empty(),
            "undirected fuzzer should not pass the wide gate: {:?}",
            control.stats()
        );
    }

    #[test]
    fn fuzzing_is_deterministic_under_a_seed() {
        let bug = BugSpec::new("fuzz/det", BugKind::Uaf);
        let run = || {
            let (mut session, image) = ready_session(std::slice::from_ref(&bug));
            let dict = Dictionary::extract(&image);
            let config = FuzzerConfig::new(Strategy::Tardis, 7);
            let mut fuzzer = Fuzzer::new(&mut session, descs_with_bugs(1), dict, config);
            fuzzer.run(300).unwrap();
            (fuzzer.stats(), fuzzer.corpus.coverage_buckets())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn corpus_grows_on_clean_firmware() {
        let (mut session, image) = ready_session(&[]);
        let dict = Dictionary::extract(&image);
        let config = FuzzerConfig::new(Strategy::Syz, 3);
        let mut fuzzer = Fuzzer::new(&mut session, descs_with_bugs(0), dict, config);
        fuzzer.run(120).unwrap();
        let stats = fuzzer.stats();
        assert_eq!(stats.execs, 120);
        assert!(stats.corpus > 3, "coverage-novel inputs retained: {stats:?}");
        assert!(stats.findings == 0);
    }
}
