//! Append-only campaign journal with crash-tolerant replay.
//!
//! The supervisor writes every durable campaign event — corpus additions,
//! findings, periodic full-state checkpoints — as length-framed records
//! appended (and flushed) to a single file. A campaign killed at any
//! instant leaves at worst one torn record at the tail; [`Journal::load`]
//! tolerates that by returning everything up to the last intact frame plus
//! a `truncated` flag. Resuming from the newest checkpoint then reproduces
//! the uninterrupted campaign bit-identically, because the checkpoint
//! carries the *complete* mutable fuzzer state ([`FuzzerState`]) and the
//! supervisor's own bookkeeping ([`SupervisorState`]).
//!
//! Wire format: an 8-byte magic (`EMBSANJ1`), then records framed as
//! `[tag: u8][len: u32 LE][payload: len bytes]`. Payload encodings are
//! hand-rolled little-endian (no serialization dependency) and versioned
//! by the magic.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use embsan_core::report::{BugClass, ChunkInfo, RaceOther, Report};
use embsan_guestos::executor::ExecProgram;

use crate::fuzzer::{Finding, FuzzerState, Strategy};

/// Journal file magic; bump the trailing digit on format changes.
/// (`2`: `StartInfo` gained the model-free MMIO configuration.)
pub const MAGIC: &[u8; 8] = b"EMBSANJ2";

/// Journal failures.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// Structurally invalid content that is not a torn tail (bad magic,
    /// undecodable payload inside an intact frame).
    Corrupt {
        /// Byte offset of the offending record.
        offset: u64,
        /// What failed to decode.
        message: String,
    },
    /// The journal has no checkpoint (or no start record) to resume from.
    NotResumable(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::Corrupt { offset, message } => {
                write!(f, "journal corrupt at byte {offset}: {message}")
            }
            JournalError::NotResumable(msg) => write!(f, "journal not resumable: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Bounded retry with exponential backoff for transient IO.

/// Bounded-retry policy for transient IO failures (journal appends,
/// socket accepts). The backoff schedule is deterministic — a pure
/// function of (base delay, attempt) — but the *delays* are wall-clock
/// sleeps: host IO timing is inherently nondeterministic, so retry counts
/// are telemetry and must never feed journaled (replayed) state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `n` (1-based) is `base_delay_ms << (n - 1)`,
    /// capped at [`RetryPolicy::MAX_DELAY_MS`].
    pub base_delay_ms: u64,
}

impl RetryPolicy {
    /// Cap on any single backoff sleep.
    pub const MAX_DELAY_MS: u64 = 1_000;

    /// No retrying at all: every failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, base_delay_ms: 0 }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 3, base_delay_ms: 2 }
    }
}

/// The deterministic backoff schedule: delay (ms) before 1-based retry
/// `attempt` under `base_delay_ms`, doubling per attempt and capped at
/// [`RetryPolicy::MAX_DELAY_MS`]. Exposed as a pure function so tests can
/// verify the schedule without sleeping.
pub fn backoff_delay_ms(base_delay_ms: u64, attempt: u32) -> u64 {
    if attempt == 0 || base_delay_ms == 0 {
        return 0;
    }
    let shift = (attempt - 1).min(63);
    base_delay_ms.checked_shl(shift).unwrap_or(u64::MAX).min(RetryPolicy::MAX_DELAY_MS)
}

/// Whether an IO error kind is worth retrying: the host signalled a
/// transient condition rather than a structural failure.
pub fn is_transient_io(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Runs `op`, retrying transient failures per `policy` with exponential
/// wall-clock backoff. Returns the final result plus the number of retries
/// consumed (telemetry — never journal this).
pub fn retry_io<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> (std::io::Result<T>, u32) {
    let mut retries = 0u32;
    loop {
        match op() {
            Ok(value) => return (Ok(value), retries),
            Err(err) if is_transient_io(err.kind()) && retries < policy.max_retries => {
                retries += 1;
                let delay = backoff_delay_ms(policy.base_delay_ms, retries);
                if delay > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
            }
            Err(err) => return (Err(err), retries),
        }
    }
}

/// The campaign identity and configuration, written once at the head so a
/// bare journal path is enough to resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartInfo {
    /// Firmware identity: a `FirmwareSpec` name for Table-3/4 campaigns, an
    /// image path for CLI `embsan fuzz` runs.
    pub firmware: String,
    /// Fuzzing strategy.
    pub strategy: Strategy,
    /// RNG seed.
    pub seed: u64,
    /// Total campaign iterations.
    pub iterations: u64,
    /// Boot budget in instructions.
    pub ready_budget: u64,
    /// Per-program budget in instructions.
    pub program_budget: u64,
    /// Checkpoint cadence in iterations.
    pub checkpoint_interval: u64,
    /// Content hash of the ready-point base image the campaign forked
    /// from (see `embsan_core::session::BaseImage::hash`). Stamped by the
    /// supervisor when the session is prepared; `0` means unstamped (the
    /// record was built before a session existed). A resume verifies the
    /// freshly prepared session hashes identically — journals encode only
    /// this hash plus the campaign's dirty state, never a RAM image, so a
    /// silent firmware/toolchain drift between kill and resume must be
    /// caught here rather than by replay divergence.
    pub base_hash: u64,
    /// Model-free MMIO region as `(base, size)`, `None` when the platform
    /// model answers all MMIO. Part of campaign identity: a resume must
    /// rebuild the session with the same region or replay diverges.
    pub model_free: Option<(u32, u32)>,
    /// Whether the platform device window was withheld from the guest.
    pub mmio_withheld: bool,
}

/// Supervisor bookkeeping that must survive kill/resume (it shapes future
/// scheduling decisions) plus its health telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorState {
    /// FNV-1a hashes of quarantined inputs, sorted.
    pub quarantined: Vec<u64>,
    /// Watchdog health counters.
    pub health: SupervisorHealth,
}

/// Supervisor health counters (monotonic over the whole campaign,
/// including across resumes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorHealth {
    /// Executions the watchdog classified as wedged (live-lock).
    pub wedges: u64,
    /// Wedges recovered by snapshot restore + retry.
    pub recoveries: u64,
    /// Inputs quarantined after exhausting wedge retries.
    pub quarantined: u64,
    /// Transient harness errors absorbed by bounded retry.
    pub transient_retries: u64,
    /// Hangs classified as WFI-idle (guest legitimately asleep).
    pub wfi_hangs: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
}

/// One full-state checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Iterations completed when the checkpoint was taken.
    pub iteration: u64,
    /// Complete fuzzer state.
    pub fuzzer: FuzzerState,
    /// Supervisor bookkeeping.
    pub supervisor: SupervisorState,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// Campaign identity; always the first record.
    Start(StartInfo),
    /// A program was retained in the corpus at `iteration`.
    CorpusAdd {
        /// Iteration that produced the program.
        iteration: u64,
        /// The retained program.
        program: ExecProgram,
    },
    /// A triaged finding at `iteration`.
    Finding {
        /// Iteration that produced the finding.
        iteration: u64,
        /// The finding.
        finding: Finding,
    },
    /// A full-state checkpoint.
    Checkpoint(Checkpoint),
    /// Clean campaign completion (absence ⇒ the campaign was killed).
    End {
        /// Total iterations completed.
        iterations: u64,
    },
}

const TAG_START: u8 = 1;
const TAG_CORPUS: u8 = 2;
const TAG_FINDING: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;
const TAG_END: u8 = 5;

// ---------------------------------------------------------------------------
// Byte-level encoding helpers.

#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, String>;

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| format!("truncated payload at offset {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    // The `expect`s below are infallible: `take(n)` returns exactly `n`
    // bytes or errors, so the slice-to-array conversions cannot fail.
    fn u32(&mut self) -> DecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> DecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self) -> DecResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
    fn string(&mut self) -> DecResult<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }
    fn done(&self) -> DecResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{} trailing payload bytes", self.buf.len() - self.pos))
        }
    }
}

fn strategy_code(strategy: Strategy) -> u8 {
    match strategy {
        Strategy::Syz => 0,
        Strategy::Tardis => 1,
    }
}

fn strategy_from_code(code: u8) -> DecResult<Strategy> {
    match code {
        0 => Ok(Strategy::Syz),
        1 => Ok(Strategy::Tardis),
        other => Err(format!("unknown strategy code {other}")),
    }
}

fn enc_program(enc: &mut Enc, program: &ExecProgram) {
    enc.bytes(&program.encode());
}

fn dec_program(dec: &mut Dec<'_>) -> DecResult<ExecProgram> {
    let bytes = dec.bytes()?;
    ExecProgram::decode(bytes).ok_or_else(|| "undecodable program".to_string())
}

fn enc_report(enc: &mut Enc, report: &Report) {
    enc.u8(report.class.code());
    enc.u32(report.addr);
    enc.u8(report.size);
    enc.u8(u8::from(report.is_write));
    enc.u32(report.pc);
    enc.u32(report.cpu as u32);
    match &report.chunk {
        None => enc.u8(0),
        Some(chunk) => {
            enc.u8(1);
            enc.u32(chunk.addr);
            enc.u32(chunk.size);
            enc.u32(chunk.alloc_pc);
            match chunk.free_pc {
                None => enc.u8(0),
                Some(pc) => {
                    enc.u8(1);
                    enc.u32(pc);
                }
            }
        }
    }
    match &report.other {
        None => enc.u8(0),
        Some(other) => {
            enc.u8(1);
            enc.u32(other.pc);
            enc.u32(other.cpu as u32);
            enc.u8(u8::from(other.is_write));
        }
    }
}

fn dec_report(dec: &mut Dec<'_>) -> DecResult<Report> {
    let class = BugClass::from_code(dec.u8()?)
        .ok_or_else(|| "unknown bug-class code (journal from a newer build?)".to_string())?;
    let addr = dec.u32()?;
    let size = dec.u8()?;
    let is_write = dec.u8()? != 0;
    let pc = dec.u32()?;
    let cpu = dec.u32()? as usize;
    let chunk = if dec.u8()? != 0 {
        let (addr, size, alloc_pc) = (dec.u32()?, dec.u32()?, dec.u32()?);
        let free_pc = if dec.u8()? != 0 { Some(dec.u32()?) } else { None };
        Some(ChunkInfo { addr, size, alloc_pc, free_pc })
    } else {
        None
    };
    let other = if dec.u8()? != 0 {
        let (pc, cpu) = (dec.u32()?, dec.u32()? as usize);
        Some(RaceOther { pc, cpu, is_write: dec.u8()? != 0 })
    } else {
        None
    };
    Ok(Report { class, addr, size, is_write, pc, cpu, chunk, other })
}

fn enc_finding(enc: &mut Enc, finding: &Finding) {
    enc_report(enc, &finding.report);
    enc_program(enc, &finding.program);
    enc.bytes(&finding.bug_syscalls);
}

fn dec_finding(dec: &mut Dec<'_>) -> DecResult<Finding> {
    let report = dec_report(dec)?;
    let program = dec_program(dec)?;
    let bug_syscalls = dec.bytes()?.to_vec();
    Ok(Finding { report, program, bug_syscalls })
}

/// Run-length encodes the (mostly zero) global coverage map.
fn enc_rle(enc: &mut Enc, data: &[u8]) {
    enc.u32(data.len() as u32);
    let mut i = 0;
    while i < data.len() {
        let value = data[i];
        let mut run = 1u32;
        while i + (run as usize) < data.len() && data[i + run as usize] == value && run < u32::MAX {
            run += 1;
        }
        enc.u8(value);
        enc.u32(run);
        i += run as usize;
    }
}

fn dec_rle(dec: &mut Dec<'_>) -> DecResult<Vec<u8>> {
    let total = dec.u32()? as usize;
    if total > 1 << 24 {
        return Err(format!("implausible RLE length {total}"));
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let value = dec.u8()?;
        let run = dec.u32()? as usize;
        if run == 0 || out.len() + run > total {
            return Err("invalid RLE run".to_string());
        }
        out.extend(std::iter::repeat_n(value, run));
    }
    Ok(out)
}

fn enc_fuzzer_state(enc: &mut Enc, state: &FuzzerState) {
    enc.u64(state.rng_state);
    enc.u64(state.execs);
    enc.u32(state.corpus_entries.len() as u32);
    for program in &state.corpus_entries {
        enc_program(enc, program);
    }
    enc_rle(enc, &state.global_map);
    enc.u32(state.det_pending.len() as u32);
    for program in &state.det_pending {
        enc_program(enc, program);
    }
    enc.u32(state.det_seen.len() as u32);
    for &(nr, idx, val) in &state.det_seen {
        enc.u8(nr);
        enc.u32(idx);
        enc.u32(val);
    }
    enc.u32(state.findings.len() as u32);
    for finding in &state.findings {
        enc_finding(enc, finding);
    }
    enc.u32(state.dedup_keys.len() as u32);
    for &(class, pc, sig) in &state.dedup_keys {
        enc.u8(class.code());
        enc.u32(pc);
        enc.u64(sig);
    }
}

fn dec_fuzzer_state(dec: &mut Dec<'_>) -> DecResult<FuzzerState> {
    let rng_state = dec.u64()?;
    let execs = dec.u64()?;
    let mut corpus_entries = Vec::new();
    for _ in 0..dec.u32()? {
        corpus_entries.push(dec_program(dec)?);
    }
    let global_map = dec_rle(dec)?;
    let mut det_pending = Vec::new();
    for _ in 0..dec.u32()? {
        det_pending.push(dec_program(dec)?);
    }
    let mut det_seen = Vec::new();
    for _ in 0..dec.u32()? {
        det_seen.push((dec.u8()?, dec.u32()?, dec.u32()?));
    }
    let mut findings = Vec::new();
    for _ in 0..dec.u32()? {
        findings.push(dec_finding(dec)?);
    }
    let mut dedup_keys = Vec::new();
    for _ in 0..dec.u32()? {
        let class = BugClass::from_code(dec.u8()?)
            .ok_or_else(|| "unknown bug-class code in dedup key".to_string())?;
        dedup_keys.push((class, dec.u32()?, dec.u64()?));
    }
    Ok(FuzzerState {
        rng_state,
        execs,
        corpus_entries,
        global_map,
        det_pending,
        det_seen,
        findings,
        dedup_keys,
    })
}

fn enc_supervisor_state(enc: &mut Enc, state: &SupervisorState) {
    enc.u32(state.quarantined.len() as u32);
    for &hash in &state.quarantined {
        enc.u64(hash);
    }
    let h = &state.health;
    for v in
        [h.wedges, h.recoveries, h.quarantined, h.transient_retries, h.wfi_hangs, h.checkpoints]
    {
        enc.u64(v);
    }
}

fn dec_supervisor_state(dec: &mut Dec<'_>) -> DecResult<SupervisorState> {
    let mut quarantined = Vec::new();
    for _ in 0..dec.u32()? {
        quarantined.push(dec.u64()?);
    }
    let health = SupervisorHealth {
        wedges: dec.u64()?,
        recoveries: dec.u64()?,
        quarantined: dec.u64()?,
        transient_retries: dec.u64()?,
        wfi_hangs: dec.u64()?,
        checkpoints: dec.u64()?,
    };
    Ok(SupervisorState { quarantined, health })
}

impl Record {
    fn tag(&self) -> u8 {
        match self {
            Record::Start(_) => TAG_START,
            Record::CorpusAdd { .. } => TAG_CORPUS,
            Record::Finding { .. } => TAG_FINDING,
            Record::Checkpoint(_) => TAG_CHECKPOINT,
            Record::End { .. } => TAG_END,
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut enc = Enc::default();
        match self {
            Record::Start(start) => {
                enc.string(&start.firmware);
                enc.u8(strategy_code(start.strategy));
                enc.u64(start.seed);
                enc.u64(start.iterations);
                enc.u64(start.ready_budget);
                enc.u64(start.program_budget);
                enc.u64(start.checkpoint_interval);
                enc.u64(start.base_hash);
                match start.model_free {
                    None => enc.u8(0),
                    Some((base, size)) => {
                        enc.u8(1);
                        enc.u32(base);
                        enc.u32(size);
                    }
                }
                enc.u8(u8::from(start.mmio_withheld));
            }
            Record::CorpusAdd { iteration, program } => {
                enc.u64(*iteration);
                enc_program(&mut enc, program);
            }
            Record::Finding { iteration, finding } => {
                enc.u64(*iteration);
                enc_finding(&mut enc, finding);
            }
            Record::Checkpoint(cp) => {
                enc.u64(cp.iteration);
                enc_fuzzer_state(&mut enc, &cp.fuzzer);
                enc_supervisor_state(&mut enc, &cp.supervisor);
            }
            Record::End { iterations } => enc.u64(*iterations),
        }
        enc.0
    }

    fn decode(tag: u8, payload: &[u8]) -> DecResult<Record> {
        let mut dec = Dec::new(payload);
        let record = match tag {
            TAG_START => Record::Start(StartInfo {
                firmware: dec.string()?,
                strategy: strategy_from_code(dec.u8()?)?,
                seed: dec.u64()?,
                iterations: dec.u64()?,
                ready_budget: dec.u64()?,
                program_budget: dec.u64()?,
                checkpoint_interval: dec.u64()?,
                base_hash: dec.u64()?,
                model_free: if dec.u8()? != 0 { Some((dec.u32()?, dec.u32()?)) } else { None },
                mmio_withheld: dec.u8()? != 0,
            }),
            TAG_CORPUS => {
                Record::CorpusAdd { iteration: dec.u64()?, program: dec_program(&mut dec)? }
            }
            TAG_FINDING => {
                Record::Finding { iteration: dec.u64()?, finding: dec_finding(&mut dec)? }
            }
            TAG_CHECKPOINT => Record::Checkpoint(Checkpoint {
                iteration: dec.u64()?,
                fuzzer: dec_fuzzer_state(&mut dec)?,
                supervisor: dec_supervisor_state(&mut dec)?,
            }),
            TAG_END => Record::End { iterations: dec.u64()? },
            other => return Err(format!("unknown record tag {other}")),
        };
        dec.done()?;
        Ok(record)
    }
}

/// A journal loaded from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// All intact records, in file order.
    pub records: Vec<Record>,
    /// Whether a torn record was dropped from the tail (the campaign was
    /// killed mid-write).
    pub truncated: bool,
    /// Byte length of the intact prefix (resume re-opens the file truncated
    /// to this before appending).
    pub valid_len: u64,
}

impl LoadedJournal {
    /// The start record.
    ///
    /// # Errors
    ///
    /// [`JournalError::NotResumable`] when the journal has none.
    pub fn start(&self) -> Result<&StartInfo, JournalError> {
        match self.records.first() {
            Some(Record::Start(start)) => Ok(start),
            _ => Err(JournalError::NotResumable("no start record".to_string())),
        }
    }

    /// The newest intact checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.records.iter().rev().find_map(|r| match r {
            Record::Checkpoint(cp) => Some(cp),
            _ => None,
        })
    }

    /// Whether the campaign completed cleanly (an `End` record exists).
    pub fn ended(&self) -> bool {
        self.records.iter().any(|r| matches!(r, Record::End { .. }))
    }
}

/// An open, append-mode campaign journal.
///
/// Appends absorb transient IO failures via a bounded [`RetryPolicy`];
/// the consumed retry count is a per-process telemetry counter
/// ([`Journal::io_retries`]) and is deliberately *not* part of any
/// journaled or checkpointed state — host IO timing is nondeterministic
/// and must not leak into bit-identical resume.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    policy: RetryPolicy,
    io_retries: u64,
}

impl Journal {
    /// Creates (truncating) a journal at `path` and writes the magic.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> Result<Journal, JournalError> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        file.flush()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            policy: RetryPolicy::default(),
            io_retries: 0,
        })
    }

    /// Re-opens an existing journal for appending, discarding any torn tail
    /// record first (so subsequent frames are parseable).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; [`JournalError::Corrupt`] on bad magic.
    pub fn reopen(path: &Path, valid_len: u64) -> Result<Journal, JournalError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            policy: RetryPolicy::default(),
            io_retries: 0,
        })
    }

    /// Replaces the append retry policy (builder style).
    pub fn with_policy(mut self, policy: RetryPolicy) -> Journal {
        self.policy = policy;
        self
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Transient-IO retries absorbed by appends so far this process.
    /// Telemetry only: never journaled, never part of resume state.
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Appends one record and flushes it to disk, retrying transient IO
    /// failures per the journal's [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors once retries are exhausted (or
    /// immediately for non-transient error kinds).
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        let payload = record.encode_payload();
        let mut frame = Vec::with_capacity(5 + payload.len());
        frame.push(record.tag());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        // A torn write followed by a successful retry would double-frame,
        // so retries re-send the whole frame only when nothing was written;
        // write_all on a File either writes fully or fails before advancing
        // our buffer (we rebuild from the start each attempt), and a
        // half-written frame on the final failure is exactly the torn tail
        // `load` already tolerates.
        let file = &mut self.file;
        let (result, retries) = retry_io(self.policy, || {
            file.write_all(&frame)?;
            file.flush()
        });
        self.io_retries += u64::from(retries);
        result?;
        Ok(())
    }

    /// Loads a journal, tolerating a torn tail record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] for bad magic or an undecodable payload
    /// inside an *intact* frame (torn tails are not errors).
    pub fn load(path: &Path) -> Result<LoadedJournal, JournalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(JournalError::Corrupt {
                offset: 0,
                message: "bad journal magic".to_string(),
            });
        }
        let mut records = Vec::new();
        let mut pos = MAGIC.len();
        let mut truncated = false;
        while pos < bytes.len() {
            // A frame header or body extending past EOF is a torn tail.
            if pos + 5 > bytes.len() {
                truncated = true;
                break;
            }
            let tag = bytes[pos];
            let len =
                u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4 bytes")) as usize;
            let Some(end) = (pos + 5).checked_add(len).filter(|&e| e <= bytes.len()) else {
                truncated = true;
                break;
            };
            let payload = &bytes[pos + 5..end];
            let record = Record::decode(tag, payload)
                .map_err(|message| JournalError::Corrupt { offset: pos as u64, message })?;
            records.push(record);
            pos = end;
        }
        Ok(LoadedJournal { records, truncated, valid_len: pos as u64 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> ExecProgram {
        let mut program = ExecProgram::new();
        program.push(2, &[64, 0]).push(16, &[0xDEAD_BEEF]);
        program
    }

    fn sample_finding() -> Finding {
        Finding {
            report: Report {
                class: BugClass::Uaf,
                addr: 0x20_0040,
                size: 4,
                is_write: true,
                pc: 0x1_0100,
                cpu: 1,
                chunk: Some(ChunkInfo {
                    addr: 0x20_0040,
                    size: 24,
                    alloc_pc: 0x1_0050,
                    free_pc: Some(0x1_0060),
                }),
                other: Some(RaceOther { pc: 0x1_0200, cpu: 0, is_write: false }),
            },
            program: sample_program(),
            bug_syscalls: vec![16],
        }
    }

    fn sample_state() -> FuzzerState {
        let mut global_map = vec![0u8; crate::cover::MAP_SIZE];
        global_map[7] = 3;
        global_map[4096] = 129;
        FuzzerState {
            rng_state: 0xDEAD_BEEF_CAFE_F00D,
            execs: 1234,
            corpus_entries: vec![sample_program()],
            global_map,
            det_pending: vec![sample_program(), ExecProgram::new()],
            det_seen: vec![(2, 0, 64), (16, 0, 0xDEAD_BEEF)],
            findings: vec![sample_finding()],
            dedup_keys: vec![(BugClass::HeapOob, 0x1_0000, 0), (BugClass::Uaf, 0x1_0100, 99)],
        }
    }

    fn roundtrip(record: &Record) -> Record {
        let payload = record.encode_payload();
        Record::decode(record.tag(), &payload).unwrap()
    }

    #[test]
    fn records_roundtrip() {
        let start = Record::Start(StartInfo {
            firmware: "OpenWRT-armvirt".to_string(),
            strategy: Strategy::Syz,
            seed: 42,
            iterations: 10_000,
            ready_budget: 200_000_000,
            program_budget: 3_000_000,
            checkpoint_interval: 500,
            base_hash: 0xDEAD_BEEF_0BAD_F00D,
            model_free: Some((0xF000_0000, 0x1000)),
            mmio_withheld: true,
        });
        assert_eq!(roundtrip(&start), start);
        let add = Record::CorpusAdd { iteration: 7, program: sample_program() };
        assert_eq!(roundtrip(&add), add);
        let finding = Record::Finding { iteration: 9, finding: sample_finding() };
        assert_eq!(roundtrip(&finding), finding);
        let checkpoint = Record::Checkpoint(Checkpoint {
            iteration: 500,
            fuzzer: sample_state(),
            supervisor: SupervisorState {
                quarantined: vec![3, 9],
                health: SupervisorHealth { wedges: 2, recoveries: 1, ..Default::default() },
            },
        });
        assert_eq!(roundtrip(&checkpoint), checkpoint);
        let end = Record::End { iterations: 10_000 };
        assert_eq!(roundtrip(&end), end);
    }

    #[test]
    fn file_roundtrip_and_torn_tail_tolerance() {
        let dir = std::env::temp_dir().join(format!("embsan-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.journal");
        let start = Record::Start(StartInfo {
            firmware: "fw".to_string(),
            strategy: Strategy::Tardis,
            seed: 1,
            iterations: 100,
            ready_budget: 1,
            program_budget: 1,
            checkpoint_interval: 10,
            base_hash: 0,
            model_free: None,
            mmio_withheld: false,
        });
        let add = Record::CorpusAdd { iteration: 3, program: sample_program() };
        {
            let mut journal = Journal::create(&path).unwrap();
            journal.append(&start).unwrap();
            journal.append(&add).unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records, vec![start.clone(), add.clone()]);
        assert!(!loaded.truncated);
        assert!(!loaded.ended());

        // Simulate a kill mid-write: append a torn frame.
        let intact_len = loaded.valid_len;
        {
            use std::io::Write;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&[TAG_FINDING, 0xFF, 0x00, 0x00, 0x00, 1, 2, 3]).unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records.len(), 2, "torn tail dropped, intact prefix kept");
        assert!(loaded.truncated);
        assert_eq!(loaded.valid_len, intact_len);

        // Reopen for resume: the torn tail is discarded, appends parse.
        let end = Record::End { iterations: 100 };
        {
            let mut journal = Journal::reopen(&path, loaded.valid_len).unwrap();
            journal.append(&end).unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.records, vec![start, add, end]);
        assert!(!loaded.truncated);
        assert!(loaded.ended());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_magic_and_bad_payloads_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("embsan-journal-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.journal");
        std::fs::write(&path, b"NOTAMAGI").unwrap();
        assert!(matches!(Journal::load(&path), Err(JournalError::Corrupt { offset: 0, .. })));
        // Intact frame with an undecodable payload: Corrupt, not a panic.
        let mut bytes = MAGIC.to_vec();
        bytes.push(TAG_START);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Journal::load(&path), Err(JournalError::Corrupt { .. })));
        // Unknown tag inside an intact frame is also Corrupt.
        let mut bytes = MAGIC.to_vec();
        bytes.push(99);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Journal::load(&path), Err(JournalError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        assert_eq!(backoff_delay_ms(2, 0), 0, "attempt 0 never sleeps");
        assert_eq!(backoff_delay_ms(0, 5), 0, "zero base disables sleeping");
        assert_eq!(backoff_delay_ms(2, 1), 2);
        assert_eq!(backoff_delay_ms(2, 2), 4);
        assert_eq!(backoff_delay_ms(2, 3), 8);
        assert_eq!(backoff_delay_ms(2, 20), RetryPolicy::MAX_DELAY_MS, "capped");
        assert_eq!(backoff_delay_ms(u64::MAX, 64), RetryPolicy::MAX_DELAY_MS, "no overflow");
    }

    #[test]
    fn retry_io_absorbs_transient_failures_and_counts() {
        let policy = RetryPolicy { max_retries: 3, base_delay_ms: 0 };
        // Two transient failures, then success.
        let mut attempts = 0;
        let (result, retries) = retry_io(policy, || {
            attempts += 1;
            if attempts <= 2 {
                Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(retries, 2);

        // Persistent transient failure exhausts the budget.
        let (result, retries) =
            retry_io(policy, || Err::<(), _>(std::io::Error::from(std::io::ErrorKind::TimedOut)));
        assert!(result.is_err());
        assert_eq!(retries, 3);

        // Non-transient failures are final immediately.
        let (result, retries) = retry_io(policy, || {
            Err::<(), _>(std::io::Error::from(std::io::ErrorKind::PermissionDenied))
        });
        assert!(result.is_err());
        assert_eq!(retries, 0);
    }

    #[test]
    fn journal_counts_no_retries_on_healthy_appends() {
        let dir = std::env::temp_dir().join(format!("embsan-journal-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.journal");
        let mut journal = Journal::create(&path)
            .unwrap()
            .with_policy(RetryPolicy { max_retries: 2, base_delay_ms: 0 });
        journal.append(&Record::End { iterations: 1 }).unwrap();
        assert_eq!(journal.io_retries(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rle_handles_degenerate_shapes() {
        for data in [vec![], vec![0u8; 10], vec![1, 2, 3], vec![5; 100_000]] {
            let mut enc = Enc::default();
            enc_rle(&mut enc, &data);
            let mut dec = Dec::new(&enc.0);
            assert_eq!(dec_rle(&mut dec).unwrap(), data);
            assert!(dec.done().is_ok());
        }
    }
}
