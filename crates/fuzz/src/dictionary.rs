//! Immediate-constant dictionary extracted from firmware binaries.
//!
//! The classic binary-fuzzing trick: comparison constants in the target
//! usually appear as immediates in its code. Scanning the firmware's text
//! section for `addi rd, r0, imm` / `li`-style materializations and branch
//! comparisons yields a dictionary that mutation splices into arguments —
//! which is how magic-gated paths (like real kernels' command codes) become
//! reachable without symbolic execution.

use embsan_asm::image::FirmwareImage;
use embsan_emu::isa::{Insn, Reg, Word};
use embsan_emu::profile::ArchProfile;

/// A dictionary of interesting constants.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<u32>,
}

impl Dictionary {
    /// Extracts a dictionary from a firmware image's text section.
    ///
    /// Works on stripped images too — only the instruction stream is
    /// needed.
    pub fn extract(image: &FirmwareImage) -> Dictionary {
        let profile = ArchProfile::for_arch(image.arch);
        let mut values = Vec::new();
        for chunk in image.text.chunks_exact(4) {
            let word = Word::from_bytes([chunk[0], chunk[1], chunk[2], chunk[3]], profile.endian);
            let Ok(insn) = Insn::decode(word) else { continue };
            let interesting = match insn {
                // Constant materialization into a register.
                Insn::Addi { rs1: Reg::R0, imm, .. } => Some(imm as u32),
                Insn::Ori { imm, .. } | Insn::Xori { imm, .. } => Some(imm as u32),
                Insn::Slti { imm, .. } | Insn::Sltiu { imm, .. } => Some(imm as u32),
                Insn::Lui { imm, .. } => Some(imm),
                _ => None,
            };
            if let Some(value) = interesting {
                if value != 0 && !values.contains(&value) {
                    values.push(value);
                }
            }
        }
        Dictionary { values }
    }

    /// Builds a dictionary from explicit values (tests, replayed
    /// checkpoints).
    pub fn from_values(values: &[u32]) -> Dictionary {
        Dictionary { values: values.to_vec() }
    }

    /// The extracted constants.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Picks an entry by an arbitrary index (callers supply randomness).
    pub fn pick(&self, index: usize) -> Option<u32> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values[index % self.values.len()])
        }
    }

    /// The byte-sized entries (values < 256), used by byte-splice mutation
    /// and the deterministic dictionary stage. Single-byte comparisons —
    /// staged magic gates — always draw from this set.
    pub fn bytes(&self) -> Vec<u8> {
        self.values.iter().filter(|&&v| v < 256).map(|&v| v as u8).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use embsan_emu::profile::Arch;
    use embsan_guestos::bugs::{gate_stages, BugKind, BugSpec};
    use embsan_guestos::{os, BuildOptions};

    #[test]
    fn extracts_gate_constants_from_stripped_firmware() {
        let spec = BugSpec::new("victim/path", BugKind::OobWrite);
        let opts = BuildOptions::new(Arch::Armv);
        let image = os::vxworks::build(&opts, std::slice::from_ref(&spec)).unwrap();
        assert!(!image.has_symbols());
        let dict = Dictionary::extract(&image);
        assert!(!dict.is_empty());
        let [s0, s1] = gate_stages("victim/path");
        assert!(
            dict.values().contains(&u32::from(s0)) || s0 == 0,
            "stage-1 gate constant must be in the dictionary"
        );
        assert!(
            dict.values().contains(&u32::from(s1)) || s1 == 0,
            "stage-2 gate constant must be in the dictionary"
        );
    }

    #[test]
    fn pick_is_total_over_nonempty_dictionaries() {
        let dict = Dictionary { values: vec![1, 2, 3] };
        assert_eq!(dict.pick(0), Some(1));
        assert_eq!(dict.pick(4), Some(2));
        assert_eq!(Dictionary::default().pick(7), None);
    }
}
