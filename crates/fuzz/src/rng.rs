//! Small in-tree pseudo-random number generator.
//!
//! The fuzzer only needs a fast, seedable, deterministic source of bits —
//! no cryptographic strength, no distribution machinery — so instead of an
//! external crate it uses SplitMix64 (Steele, Lea & Flood; the same
//! generator `java.util.SplittableRandom` and xoshiro seeding use). The
//! offline build environment cannot fetch `rand`, and determinism under a
//! seed is a documented fuzzer property, so the generator lives here where
//! its output can never change underneath us.

/// SplitMix64 generator. Copyable so runs can be forked deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Distinct seeds — including
    /// 0 and 1 — produce uncorrelated streams.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Raw generator state, for checkpointing:
    /// `seed_from_u64(rng.state())` recreates the generator exactly.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u32`.
    pub fn gen_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u8`.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `usize`.
    pub fn gen_usize(&mut self) -> usize {
        self.next_u64() as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        self.next_u64() <= threshold
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of a 64-bit product over small spans is irrelevant for fuzzing.
        let hi64 = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo + hi64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range_usize_incl(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64 + 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(0);
        let mut b = SplitMix64::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reference_vector() {
        // First outputs for seed 0 from the published SplitMix64 reference.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.range_u32(3, 17);
            assert!((3..17).contains(&v));
            let w = rng.range_usize_incl(1, 8);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
