//! Resilient campaign supervision: watchdogs, recovery, quarantine, resume.
//!
//! Long campaigns die in ways that are not the target's fault: a fault-plan
//! (or a real bug) live-locks the guest, a transient harness error aborts an
//! iteration, the host kills the process. The supervisor wraps the fuzzing
//! loop so none of these ends the campaign:
//!
//! - **watchdog** — a program that exhausts its instruction budget is
//!   classified via retired-instruction slicing
//!   ([`Machine::classify_hang`]): WFI-idle guests are merely asleep,
//!   live-locked guests are wedged;
//! - **snapshot-restore recovery** — a wedged guest is recovered by the
//!   session's post-ready snapshot restore and the input retried a bounded
//!   number of times;
//! - **quarantine** — inputs that wedge on every retry are removed from the
//!   corpus and mutation queue and never scheduled again;
//! - **bounded retry** — transient harness errors are retried a bounded
//!   number of times before failing the campaign with full context
//!   (deterministic emulation has no time-based backoff to wait out, so the
//!   bound *is* the backoff);
//! - **journal + resume** — durable events stream to an append-only
//!   [`Journal`]; a killed campaign resumed from its newest checkpoint
//!   produces bit-identical results to one that was never killed, because
//!   checkpoints carry the complete mutable state ([`FuzzerState`]) and the
//!   per-program session reset makes iteration replay exact.
//!
//! The supervised path is deliberately **single-threaded**: the journal's
//! bit-identical-replay guarantee is defined over the sequential iteration
//! order. Parallel throughput lives in [`crate::parallel`], whose engine is
//! deterministic across worker counts but journals nothing; the CLI's
//! `--workers` flag therefore falls back to one thread whenever a journal,
//! fault plan or kill-after drill is requested.
//!
//! [`Machine::classify_hang`]: embsan_emu::machine::Machine::classify_hang

use std::path::Path;

use embsan_emu::fault::{FaultPlan, HangClass, InjectionStats};
use embsan_emu::machine::RunExit;
use embsan_guestos::executor::ExecProgram;
use embsan_guestos::{firmware_by_name, FirmwareSpec};
use embsan_obs::{
    EventKind, MergedTrace, MetricClass, MetricsRegistry, MetricsSnapshot, TraceConfig, TraceSpan,
};

use crate::campaign::{
    attribute_findings, prepare_session, CampaignConfig, CampaignError, CampaignResult,
};
use crate::descs::{descriptions_for, SyscallDesc};
use crate::dictionary::Dictionary;
use crate::fuzzer::{Finding, Fuzzer, FuzzerConfig, FuzzerState, FuzzerStats, Strategy};
use crate::journal::{
    Checkpoint, Journal, JournalError, LoadedJournal, Record, StartInfo, SupervisorHealth,
    SupervisorState,
};
use embsan_core::session::Session;
use embsan_guestos::firmware::Fuzzer as PaperFuzzer;

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// The underlying campaign configuration (iterations, seed, budgets).
    pub campaign: CampaignConfig,
    /// Checkpoint cadence in iterations.
    pub checkpoint_interval: u64,
    /// Retries (after snapshot-restore recovery) before a wedging input is
    /// quarantined.
    pub max_wedge_retries: u32,
    /// Bounded retries for transient harness errors before the campaign
    /// fails with context.
    pub max_transient_retries: u32,
    /// Resilience drill: stop (as if killed) after this many iterations.
    /// The journal then resumes the campaign. `None` runs to completion.
    pub kill_after: Option<u64>,
    /// Deterministic fault plan armed on the machine before fuzzing
    /// (fault-injection campaigns).
    pub fault_plan: Option<FaultPlan>,
    /// Retirement slices used by hang classification.
    pub hang_slices: u32,
    /// Instruction budget per classification slice.
    pub hang_slice_budget: u64,
    /// Records a merged event trace ([`TraceConfig::deterministic`]
    /// preset). Per-iteration spans are clock-rebased, so the concatenation
    /// of a killed run's spans (up to its resume checkpoint) with the
    /// resumed run's spans equals the uninterrupted run's trace.
    pub trace: bool,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            campaign: CampaignConfig::default(),
            checkpoint_interval: 500,
            max_wedge_retries: 2,
            max_transient_retries: 3,
            kill_after: None,
            fault_plan: None,
            hang_slices: 3,
            hang_slice_budget: 10_000,
            trace: false,
        }
    }
}

/// The raw supervised outcome (strategy-agnostic; campaign wrappers
/// attribute findings to Table-4 rows on top).
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// Triaged findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Fuzzer statistics.
    pub stats: FuzzerStats,
    /// Supervisor health counters.
    pub health: SupervisorHealth,
    /// FNV-1a hashes of quarantined inputs, sorted.
    pub quarantined: Vec<u64>,
    /// Iterations actually completed.
    pub iterations_done: u64,
    /// `false` when `kill_after` stopped the run early (resume from the
    /// journal to continue).
    pub completed: bool,
    /// Fault-injection statistics from the machine (all zero when no fault
    /// plan was armed).
    pub injection: InjectionStats,
    /// Merged event trace with one span per iteration executed by *this*
    /// process (a resumed run's trace starts at its checkpoint). `None`
    /// unless [`SupervisorConfig::trace`] was set.
    pub trace: Option<MergedTrace>,
    /// Transient journal-IO retries absorbed during this process's run.
    /// Host-IO telemetry: never journaled, excluded from deterministic
    /// metric snapshots.
    pub journal_retries: u64,
}

/// A supervised Table-3/4 campaign result.
#[derive(Debug)]
pub struct SupervisedResult {
    /// The attributed campaign result (identical in shape to
    /// [`crate::campaign::run_campaign`]'s).
    pub result: CampaignResult,
    /// Supervisor health counters.
    pub health: SupervisorHealth,
    /// Fault-injection statistics.
    pub injection: InjectionStats,
    /// Whether the campaign ran to completion (vs. a `kill_after` drill).
    pub completed: bool,
    /// Merged event trace (see [`SupervisedOutcome::trace`]).
    pub trace: Option<MergedTrace>,
    /// Transient journal-IO retries (see [`SupervisedOutcome::journal_retries`]).
    pub journal_retries: u64,
}

/// Copies a supervised run's counters into `registry` under the `fuzzer`,
/// `supervisor` and `injection` subsystems. The supervised path is
/// single-threaded and seed-deterministic, so every entry is
/// [`MetricClass::Deterministic`].
fn supervised_metrics(
    stats: &FuzzerStats,
    health: &SupervisorHealth,
    injection: &InjectionStats,
    journal_retries: u64,
    registry: &mut MetricsRegistry,
) {
    use MetricClass::Deterministic;
    // Journal-IO retry counts reflect host filesystem behaviour, not guest
    // execution, so they ride in the Telemetry class and never appear in
    // `to_json(false)` deterministic artifacts.
    registry.counter("supervisor", "journal_io_retries", MetricClass::Telemetry, journal_retries);
    registry.counter("fuzzer", "execs", Deterministic, stats.execs);
    registry.gauge("fuzzer", "corpus", Deterministic, stats.corpus as i64);
    registry.gauge("fuzzer", "coverage", Deterministic, stats.coverage as i64);
    registry.gauge("fuzzer", "findings", Deterministic, stats.findings as i64);
    registry.counter("supervisor", "wedges", Deterministic, health.wedges);
    registry.counter("supervisor", "recoveries", Deterministic, health.recoveries);
    registry.counter("supervisor", "quarantined", Deterministic, health.quarantined);
    registry.counter("supervisor", "transient_retries", Deterministic, health.transient_retries);
    registry.counter("supervisor", "wfi_hangs", Deterministic, health.wfi_hangs);
    registry.counter("supervisor", "checkpoints", Deterministic, health.checkpoints);
    registry.counter("injection", "ram_bit_flips", Deterministic, injection.ram_bit_flips);
    registry.counter("injection", "mmio_corruptions", Deterministic, injection.mmio_corruptions);
    registry.counter("injection", "spurious_irqs", Deterministic, injection.spurious_irqs);
    registry.counter("injection", "alloc_failures", Deterministic, injection.alloc_failures);
    registry.counter("injection", "cpu_wedges", Deterministic, injection.cpu_wedges);
}

impl SupervisedOutcome {
    /// Copies the run's counters into `registry` (`fuzzer`, `supervisor`
    /// and `injection` subsystems; every entry deterministic).
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        supervised_metrics(
            &self.stats,
            &self.health,
            &self.injection,
            self.journal_retries,
            registry,
        );
    }

    /// A metrics snapshot of this outcome (see
    /// [`SupervisedOutcome::collect_metrics`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut registry = MetricsRegistry::new();
        self.collect_metrics(&mut registry);
        registry.snapshot()
    }
}

impl SupervisedResult {
    /// Copies the run's counters into `registry` (`fuzzer`, `supervisor`
    /// and `injection` subsystems; every entry deterministic).
    pub fn collect_metrics(&self, registry: &mut MetricsRegistry) {
        supervised_metrics(
            &self.result.stats,
            &self.health,
            &self.injection,
            self.journal_retries,
            registry,
        );
    }

    /// A metrics snapshot of this result (see
    /// [`SupervisedResult::collect_metrics`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut registry = MetricsRegistry::new();
        self.collect_metrics(&mut registry);
        registry.snapshot()
    }
}

/// A resume/continuation point for the supervised loop: everything a
/// process (or a daemon scheduler slice) needs to continue a campaign
/// without re-deriving state.
///
/// Built either from a journal ([`ResumePoint::from_journal`]) after a
/// kill, or returned in-memory by [`run_supervised_span`] at a slice
/// boundary so the next slice continues without touching disk.
#[derive(Debug, Clone)]
pub struct ResumePoint {
    /// Iterations completed before this point.
    pub iteration: u64,
    /// Complete mutable state, or `None` when the journal holds a `Start`
    /// record but no checkpoint yet: the run restarts from iteration 0
    /// with fresh state, but must *not* re-append `Start` and must dedupe
    /// the records the killed process already journaled.
    pub state: Option<(FuzzerState, SupervisorState)>,
    /// Multiset of findings already journaled at or after this point,
    /// keyed by (input-hash, bug-class code). Replay regenerates these
    /// deterministically; matching appends are suppressed so journal
    /// consumers (the daemon findings store) never see duplicates.
    pub journaled_findings: Vec<(u64, u8)>,
    /// Multiset of corpus additions already journaled at or after this
    /// point, keyed by input-hash (same suppression).
    pub journaled_corpus: Vec<u64>,
}

impl ResumePoint {
    /// A fresh-start point that still carries an existing journal's
    /// already-written records (no checkpoint yet).
    fn fresh() -> ResumePoint {
        ResumePoint {
            iteration: 0,
            state: None,
            journaled_findings: Vec::new(),
            journaled_corpus: Vec::new(),
        }
    }

    /// Builds the resume point from a loaded journal: the newest
    /// checkpoint (if any) plus the dedupe multisets of records the killed
    /// process journaled after it — replay will regenerate exactly those,
    /// and re-appending them would hand duplicates to whoever consumes the
    /// journal's record stream.
    pub fn from_journal(loaded: &LoadedJournal) -> ResumePoint {
        let cp_index = loaded.records.iter().rposition(|r| matches!(r, Record::Checkpoint(_)));
        let mut point = match cp_index {
            Some(index) => match &loaded.records[index] {
                Record::Checkpoint(cp) => ResumePoint {
                    iteration: cp.iteration,
                    state: Some((cp.fuzzer.clone(), cp.supervisor.clone())),
                    ..ResumePoint::fresh()
                },
                _ => unreachable!("rposition matched a checkpoint"),
            },
            None => ResumePoint::fresh(),
        };
        let tail = &loaded.records[cp_index.map_or(0, |i| i + 1)..];
        for record in tail {
            match record {
                Record::Finding { finding, .. } => point
                    .journaled_findings
                    .push((program_hash(&finding.program), finding.report.class.code())),
                Record::CorpusAdd { program, .. } => {
                    point.journaled_corpus.push(program_hash(program));
                }
                _ => {}
            }
        }
        point
    }
}

/// Removes one occurrence of `key` from the multiset; `true` if present.
fn consume<T: PartialEq>(set: &mut Vec<T>, key: &T) -> bool {
    match set.iter().position(|k| k == key) {
        Some(pos) => {
            set.swap_remove(pos);
            true
        }
        None => false,
    }
}

/// FNV-1a hash of a program's wire encoding (quarantine identity).
pub fn program_hash(program: &ExecProgram) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in program.encode() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn strategy_for(spec: &FirmwareSpec) -> Strategy {
    match spec.fuzzer {
        PaperFuzzer::Syzkaller => Strategy::Syz,
        PaperFuzzer::Tardis => Strategy::Tardis,
    }
}

fn start_info(spec: &FirmwareSpec, config: &SupervisorConfig) -> StartInfo {
    StartInfo {
        firmware: spec.name.to_string(),
        strategy: strategy_for(spec),
        seed: config.campaign.seed,
        iterations: config.campaign.iterations,
        ready_budget: config.campaign.ready_budget,
        program_budget: config.campaign.program_budget,
        checkpoint_interval: config.checkpoint_interval,
        // Stamped by `run_supervised_span` once the session exists: the
        // hash is a property of the booted ready state, not the config.
        base_hash: 0,
        model_free: config.campaign.model_free,
        mmio_withheld: config.campaign.mmio_withheld,
    }
}

/// Runs a supervised campaign for one firmware, optionally journaled.
///
/// # Errors
///
/// See [`CampaignError`]; supervised errors carry firmware, iteration and
/// program context.
pub fn run_supervised(
    spec: &FirmwareSpec,
    config: &SupervisorConfig,
    journal_path: Option<&Path>,
) -> Result<SupervisedResult, CampaignError> {
    let start = start_info(spec, config);
    let (mut session, dict) =
        prepare_session(spec, &config.campaign).map_err(|e| e.with_firmware(spec.name))?;
    let mut journal = match journal_path {
        Some(path) => {
            Some(Journal::create(path).map_err(|e| campaign_journal_error(e, spec.name))?)
        }
        None => None,
    };
    let outcome = run_supervised_session(
        &mut session,
        descriptions_for(spec),
        dict,
        config,
        start,
        None,
        journal.as_mut(),
    )
    .map_err(|e| e.with_firmware(spec.name))?;
    Ok(finish(spec, outcome))
}

/// Resumes a supervised campaign from its journal. The journal alone
/// identifies the firmware, configuration and newest checkpoint; the
/// supervisor re-prepares the session deterministically, imports the
/// checkpointed state, and continues — appending to the same journal.
///
/// # Errors
///
/// [`CampaignError`] with a [`JournalError`] kind when the journal is
/// unreadable, corrupt, already ended, or names an unknown firmware.
pub fn resume_supervised(
    journal_path: &Path,
    overrides: &SupervisorConfig,
) -> Result<SupervisedResult, CampaignError> {
    let loaded = Journal::load(journal_path).map_err(CampaignError::from)?;
    let start = loaded.start()?.clone();
    if loaded.ended() {
        return Err(CampaignError::from(JournalError::NotResumable(
            "campaign already completed".to_string(),
        )));
    }
    let spec = firmware_by_name(&start.firmware).ok_or_else(|| {
        CampaignError::from(JournalError::NotResumable(format!(
            "unknown firmware `{}`",
            start.firmware
        )))
        .with_firmware_string(start.firmware.clone())
    })?;
    let config = SupervisorConfig {
        campaign: CampaignConfig {
            iterations: start.iterations,
            seed: start.seed,
            ready_budget: start.ready_budget,
            program_budget: start.program_budget,
            model_free: start.model_free,
            mmio_withheld: start.mmio_withheld,
        },
        checkpoint_interval: start.checkpoint_interval,
        kill_after: overrides.kill_after,
        fault_plan: overrides.fault_plan.clone(),
        ..overrides.clone()
    };
    // Even without a checkpoint, a resume point carries the dedupe
    // multisets of already-journaled records (and suppresses the duplicate
    // `Start` a fresh restart would otherwise append).
    let resume = Some(ResumePoint::from_journal(&loaded));
    let (mut session, dict) =
        prepare_session(spec, &config.campaign).map_err(|e| e.with_firmware(spec.name))?;
    let mut journal = Journal::reopen(journal_path, loaded.valid_len)
        .map_err(|e| campaign_journal_error(e, spec.name))?;
    let outcome = run_supervised_session(
        &mut session,
        descriptions_for(spec),
        dict,
        &config,
        start,
        resume,
        Some(&mut journal),
    )
    .map_err(|e| e.with_firmware(spec.name))?;
    Ok(finish(spec, outcome))
}

fn finish(spec: &FirmwareSpec, outcome: SupervisedOutcome) -> SupervisedResult {
    let found = attribute_findings(spec, &outcome.findings);
    SupervisedResult {
        result: CampaignResult { firmware: spec.name, found, stats: outcome.stats },
        health: outcome.health,
        injection: outcome.injection,
        completed: outcome.completed,
        trace: outcome.trace,
        journal_retries: outcome.journal_retries,
    }
}

fn campaign_journal_error(e: JournalError, firmware: &str) -> CampaignError {
    CampaignError::from(e).with_firmware(firmware)
}

/// The session-generic supervised loop: works for both `FirmwareSpec`
/// campaigns and CLI image-based fuzzing (the caller prepares the session
/// and, on resume, supplies the loaded checkpoint).
///
/// # Errors
///
/// [`CampaignError`] carrying iteration and program context.
pub fn run_supervised_session(
    session: &mut Session,
    descs: Vec<SyscallDesc>,
    dict: Dictionary,
    config: &SupervisorConfig,
    start: StartInfo,
    resume: Option<ResumePoint>,
    journal: Option<&mut Journal>,
) -> Result<SupervisedOutcome, CampaignError> {
    run_supervised_span(session, descs, dict, config, start, resume, journal)
        .map(|(outcome, _)| outcome)
}

/// The slice-capable supervised loop: identical to
/// [`run_supervised_session`] but additionally returns an in-memory
/// [`ResumePoint`] when the run stopped early (`kill_after`), so a
/// scheduler running a campaign in fair-share slices can continue the next
/// slice on the same warm session without a journal round-trip. The
/// journal stays the source of truth — the continuation is a pure
/// optimization and can always be dropped in favour of
/// [`ResumePoint::from_journal`].
///
/// # Errors
///
/// [`CampaignError`] carrying iteration and program context.
pub fn run_supervised_span(
    session: &mut Session,
    descs: Vec<SyscallDesc>,
    dict: Dictionary,
    config: &SupervisorConfig,
    start: StartInfo,
    resume: Option<ResumePoint>,
    mut journal: Option<&mut Journal>,
) -> Result<(SupervisedOutcome, Option<ResumePoint>), CampaignError> {
    if let Some(plan) = &config.fault_plan {
        session.machine_mut().set_fault_plan(plan);
    }
    if config.trace {
        // Enabled after boot (prepare_session ran `run_to_ready`), so spans
        // hold only iteration events. The deterministic preset skips cache
        // events, whose timing depends on where a resumed replay starts.
        session.enable_tracing(TraceConfig::deterministic());
    }
    let mut trace = config.trace.then(MergedTrace::default);
    // Stamp or verify the base-image identity before the fuzzer borrows
    // the session. A fresh campaign records the live session's hash in its
    // Start record; a resume insists the freshly prepared session reached
    // a bit-identical ready state — the journal stores only this hash and
    // the campaign's dirty state, never a RAM image, so firmware or
    // toolchain drift between kill and resume must be caught here.
    let mut start = start;
    let live_hash = session.base_hash().unwrap_or(0);
    if start.base_hash == 0 {
        start.base_hash = live_hash;
    } else if start.base_hash != live_hash {
        return Err(CampaignError::from(JournalError::NotResumable(format!(
            "base image hash mismatch: journal has {:#018x}, prepared session is {:#018x}",
            start.base_hash, live_hash
        ))));
    }
    let mut fuzzer_config = FuzzerConfig::new(start.strategy, start.seed);
    fuzzer_config.program_budget = start.program_budget;
    let mut fuzzer = Fuzzer::new(session, descs, dict, fuzzer_config);
    let (mut iteration, mut sup, mut journaled_findings, mut journaled_corpus) = match resume {
        Some(point) => {
            let ResumePoint { iteration, state, journaled_findings, journaled_corpus } = point;
            match state {
                Some((fuzzer_state, sup)) => {
                    fuzzer.import_state(fuzzer_state);
                    (iteration, sup, journaled_findings, journaled_corpus)
                }
                // Journal has a Start record but no checkpoint: restart
                // from scratch, but don't re-append Start and still dedupe
                // whatever the killed process managed to journal.
                None => (0, SupervisorState::default(), journaled_findings, journaled_corpus),
            }
        }
        None => {
            if let Some(journal) = journal.as_deref_mut() {
                journal.append(&Record::Start(start.clone()))?;
            }
            (0, SupervisorState::default(), Vec::new(), Vec::new())
        }
    };

    let total = start.iterations;
    let mut completed = true;
    while iteration < total {
        if config.kill_after.is_some_and(|k| iteration >= k) {
            completed = false;
            break;
        }
        let mark = fuzzer.session_mut().trace_mark();
        let program = fuzzer.next_program();
        let outcome = execute_with_watchdog(&mut fuzzer, config, &program, &mut sup, iteration)?;
        if let Some(outcome) = outcome {
            let summary = fuzzer
                .commit(&program, outcome)
                .map_err(|e| CampaignError::from(e).context(iteration, &program))?;
            if let Some(journal) = journal.as_deref_mut() {
                // Replayed iterations regenerate records the pre-kill
                // process already journaled; consuming them from the
                // dedupe multisets instead of re-appending keeps the
                // record stream duplicate-free for downstream consumers.
                if summary.retained && !consume(&mut journaled_corpus, &program_hash(&program)) {
                    journal.append(&Record::CorpusAdd { iteration, program: program.clone() })?;
                }
                for finding in &fuzzer.findings()[summary.new_findings] {
                    let key = (program_hash(&finding.program), finding.report.class.code());
                    if !consume(&mut journaled_findings, &key) {
                        journal.append(&Record::Finding { iteration, finding: finding.clone() })?;
                    }
                }
            }
        }
        if let Some(trace) = &mut trace {
            // Drained after commit so minimization re-executions are part
            // of the iteration's span (they are deterministic replays).
            let events = fuzzer.session_mut().drain_trace(mark);
            trace.push_span(TraceSpan { iter: iteration, events });
        }
        iteration += 1;
        if config.checkpoint_interval > 0
            && iteration % config.checkpoint_interval == 0
            && iteration < total
        {
            if let Some(journal) = journal.as_deref_mut() {
                sup.health.checkpoints += 1;
                journal.append(&Record::Checkpoint(Checkpoint {
                    iteration,
                    fuzzer: fuzzer.export_state(),
                    supervisor: sup.clone(),
                }))?;
            }
        }
    }
    if completed {
        if let Some(journal) = journal.as_deref_mut() {
            // A final checkpoint ahead of `End` lets a restarted daemon
            // recover a completed job's full end state (stats, corpus,
            // findings) from the journal alone. Ended journals are never
            // resumed, so mid-campaign resume points are unaffected.
            if config.checkpoint_interval > 0 {
                sup.health.checkpoints += 1;
                journal.append(&Record::Checkpoint(Checkpoint {
                    iteration,
                    fuzzer: fuzzer.export_state(),
                    supervisor: sup.clone(),
                }))?;
            }
            journal.append(&Record::End { iterations: iteration })?;
        }
    }
    let continuation = (!completed).then(|| ResumePoint {
        iteration,
        state: Some((fuzzer.export_state(), sup.clone())),
        journaled_findings,
        journaled_corpus,
    });
    let stats = fuzzer.stats();
    let injection = fuzzer.session_mut().machine_mut().injection_stats();
    let journal_retries = journal.as_deref().map_or(0, |j| j.io_retries());
    Ok((
        SupervisedOutcome {
            findings: fuzzer.into_findings(),
            stats,
            health: sup.health,
            quarantined: sup.quarantined,
            iterations_done: iteration,
            completed,
            injection,
            trace,
            journal_retries,
        },
        continuation,
    ))
}

/// Executes one program under the watchdog. Returns `Ok(None)` when the
/// input wedged through all retries and was quarantined.
fn execute_with_watchdog(
    fuzzer: &mut Fuzzer<'_>,
    config: &SupervisorConfig,
    program: &ExecProgram,
    sup: &mut SupervisorState,
    iteration: u64,
) -> Result<Option<embsan_core::session::ExecOutcome>, CampaignError> {
    let mut transient: u32 = 0;
    let mut wedges: u32 = 0;
    loop {
        let outcome = match fuzzer.run_raw(program) {
            Ok(outcome) => outcome,
            Err(err) => {
                // Transient harness error: bounded retry. The next run_raw
                // starts from a snapshot restore, which is the recovery.
                transient += 1;
                sup.health.transient_retries += 1;
                if transient > config.max_transient_retries {
                    return Err(CampaignError::from(err).context(iteration, program));
                }
                continue;
            }
        };
        if fuzzer.session_mut().mmio_withheld() && outcome.exit == RunExit::BudgetExhausted {
            // Withheld MMIO: the guest's result writes are absorbed by the
            // model-free region, so programs run to their fixed time slice
            // — budget exhaustion is the normal end of an iteration, not a
            // hang to classify.
            return Ok(Some(outcome));
        }
        if outcome.exit != RunExit::BudgetExhausted {
            if outcome.exit == RunExit::AllIdle && outcome.results.len() < program.calls.len() {
                // Guest parked mid-program: asleep, not spinning. Nothing to
                // recover — the next reset unsticks it.
                sup.health.wfi_hangs += 1;
            }
            return Ok(Some(outcome));
        }
        // Budget exhausted: ask the hang classifier whether the guest is
        // idle, responsive-but-slow, or live-locked.
        let class = fuzzer
            .session_mut()
            .machine_mut()
            .classify_hang(&mut embsan_emu::NullHook, config.hang_slices, config.hang_slice_budget)
            .map_err(|e| {
                CampaignError::from(embsan_core::session::SessionError::Emu(e))
                    .context(iteration, program)
            })?;
        let trip = match class {
            HangClass::WfiIdle => "wfi-idle",
            HangClass::Responsive => "responsive",
            HangClass::LiveLock => "live-lock",
        };
        fuzzer.session_mut().tracer().record(EventKind::WatchdogTrip { class: trip });
        match class {
            HangClass::WfiIdle => {
                sup.health.wfi_hangs += 1;
                return Ok(Some(outcome));
            }
            HangClass::Responsive => return Ok(Some(outcome)),
            HangClass::LiveLock => {
                sup.health.wedges += 1;
                wedges += 1;
                if wedges > config.max_wedge_retries {
                    fuzzer.quarantine(program);
                    let hash = program_hash(program);
                    if let Err(index) = sup.quarantined.binary_search(&hash) {
                        sup.quarantined.insert(index, hash);
                    }
                    sup.health.quarantined += 1;
                    return Ok(None);
                }
                // Snapshot-restore recovery happens in run_raw's reset on
                // the retry; count it as such.
                sup.health.recoveries += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_hash_is_stable_and_content_sensitive() {
        let mut a = ExecProgram::new();
        a.push(2, &[64, 0]);
        let mut b = ExecProgram::new();
        b.push(2, &[64, 1]);
        assert_eq!(program_hash(&a), program_hash(&a));
        assert_ne!(program_hash(&a), program_hash(&b));
        assert_ne!(program_hash(&a), program_hash(&ExecProgram::new()));
    }
}
