//! Kernel fuzzers for EMBSAN guest firmware.
//!
//! Stand-ins for the two fuzzers the paper pairs with EMBSAN:
//!
//! - **Syzkaller-style** ([`Strategy::Syz`]): generation and mutation driven
//!   by typed syscall [`descs`] (slot/size/offset/value/key argument kinds),
//!   used for the Embedded Linux firmware;
//! - **Tardis-style** ([`Strategy::Tardis`]): OS-agnostic — programs are
//!   mutated with interface-shape knowledge only (call count and arity),
//!   and coverage is collected from the *emulator's* translation-block
//!   events rather than any in-guest instrumentation, matching Tardis's
//!   emulator-side coverage mechanism.
//!
//! Both share AFL-style edge [`cover`]age, a [`corpus`] with
//! novelty-gating, a [`dictionary`] of immediate constants extracted from
//! the firmware binary (the classic binary-dictionary trick), crash triage
//! with program minimization, and a deterministic seeded [`campaign`]
//! driver used by the Table 3/4 benches.
//!
//! Loading an `embsan-analysis-v1` artifact upgrades either strategy to a
//! **directed** campaign ([`directed`]): corpus entries are scored by the
//! static distance of their covered edges to a target set, scheduling is
//! annealed toward the frontier, and harvested comparison operands join the
//! dictionary stages. With no artifact loaded the directed layer is
//! completely inert.

pub mod campaign;
pub mod corpus;
pub mod cover;
pub mod descs;
pub mod dictionary;
pub mod directed;
pub mod fuzzer;
pub mod journal;
pub mod mutate;
pub mod parallel;
pub mod rng;
pub mod supervisor;

pub use campaign::{
    run_campaign, CampaignConfig, CampaignError, CampaignErrorKind, CampaignResult, FoundBug,
};
pub use corpus::Corpus;
pub use cover::CoverageMap;
pub use descs::{descriptions_for, ArgKind, SyscallDesc};
pub use dictionary::Dictionary;
pub use directed::{frontier, Direction};
pub use fuzzer::{
    CommitSummary, CoverageSource, Finding, Fuzzer, FuzzerConfig, FuzzerState, FuzzerStats,
    Strategy,
};
pub use journal::{
    backoff_delay_ms, is_transient_io, retry_io, Journal, JournalError, LoadedJournal, Record,
    RetryPolicy, StartInfo, SupervisorHealth,
};
pub use parallel::{
    run_parallel, run_parallel_campaign, run_parallel_campaign_directed, run_parallel_directed,
    ParallelConfig, ParallelOutcome, ParallelStats,
};
pub use rng::SplitMix64;
pub use supervisor::{
    program_hash, resume_supervised, run_supervised, run_supervised_session, run_supervised_span,
    ResumePoint, SupervisedOutcome, SupervisedResult, SupervisorConfig,
};
