//! Coverage-gated input corpus.

use embsan_guestos::executor::ExecProgram;

use crate::cover::{CoverageMap, MAP_SIZE};

/// Score of an entry whose distance to the direction targets is unknown
/// (no artifact loaded, or none of its covered blocks reach a target).
pub const UNSCORED: u32 = u32::MAX;

/// A corpus of programs retained for producing new coverage.
pub struct Corpus {
    entries: Vec<ExecProgram>,
    /// Per-entry static-distance score (milli-edges; [`UNSCORED`] when
    /// unknown), parallel to `entries`. Only directed campaigns read it.
    scores: Vec<u32>,
    global: Box<[u8; MAP_SIZE]>,
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Corpus")
            .field("entries", &self.entries.len())
            .field("coverage", &self.coverage_buckets())
            .finish()
    }
}

impl Default for Corpus {
    fn default() -> Corpus {
        Corpus::new()
    }
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Corpus {
        Corpus { entries: Vec::new(), scores: Vec::new(), global: Box::new([0; MAP_SIZE]) }
    }

    /// Number of retained programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total coverage buckets reached so far.
    pub fn coverage_buckets(&self) -> usize {
        self.global.iter().filter(|&&b| b != 0).count()
    }

    /// Adds `program` if its execution's coverage reached anything new.
    /// Returns `true` when retained.
    pub fn add_if_novel(&mut self, program: &ExecProgram, coverage: &CoverageMap) -> bool {
        self.add_if_novel_scored(program, coverage, UNSCORED)
    }

    /// [`Corpus::add_if_novel`] with a static-distance score attached to
    /// the entry when it is retained (directed campaigns).
    pub fn add_if_novel_scored(
        &mut self,
        program: &ExecProgram,
        coverage: &CoverageMap,
        score: u32,
    ) -> bool {
        if coverage.merge_novel(&mut self.global) > 0 {
            self.entries.push(program.clone());
            self.scores.push(score);
            true
        } else {
            false
        }
    }

    /// Picks an entry by an arbitrary index (callers supply randomness).
    pub fn pick(&self, index: usize) -> Option<&ExecProgram> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[index % self.entries.len()])
        }
    }

    /// The retained programs, in retention order (checkpoint export).
    pub fn entries(&self) -> &[ExecProgram] {
        &self.entries
    }

    /// Per-entry static-distance scores, parallel to [`Corpus::entries`]
    /// ([`UNSCORED`] when unknown).
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// The global classified-coverage map (checkpoint export).
    pub fn global_map(&self) -> &[u8; MAP_SIZE] {
        &self.global
    }

    /// Rebuilds a corpus from checkpointed parts (the inverse of
    /// [`Corpus::entries`] + [`Corpus::global_map`]).
    pub fn from_parts(entries: Vec<ExecProgram>, global: Box<[u8; MAP_SIZE]>) -> Corpus {
        let scores = vec![UNSCORED; entries.len()];
        Corpus { entries, scores, global }
    }

    /// Drops every entry for which `keep` returns `false` (input
    /// quarantine). The global coverage map is deliberately kept: the
    /// dropped input's coverage was real, only the input is untrusted.
    pub fn retain(&mut self, mut keep: impl FnMut(&ExecProgram) -> bool) {
        // Manual sweep so the parallel score vector stays in sync.
        let mut index = 0;
        while index < self.entries.len() {
            if keep(&self.entries[index]) {
                index += 1;
            } else {
                self.entries.remove(index);
                self.scores.remove(index);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_only_novel_inputs() {
        let mut corpus = Corpus::new();
        let mut cov = CoverageMap::new();
        cov.record(0, 0x1000);
        let mut program = ExecProgram::new();
        program.push(0, &[]);
        assert!(corpus.add_if_novel(&program, &cov));
        assert!(!corpus.add_if_novel(&program, &cov), "same coverage is not novel");
        assert_eq!(corpus.len(), 1);
        cov.record(0, 0x9000);
        assert!(corpus.add_if_novel(&program, &cov));
        assert_eq!(corpus.len(), 2);
        assert!(corpus.coverage_buckets() >= 2);
    }

    #[test]
    fn scores_track_entries_through_retain() {
        let mut corpus = Corpus::new();
        let mut cov = CoverageMap::new();
        for i in 0..3u8 {
            cov.reset();
            cov.record(0, 0x1000 * (u32::from(i) + 1));
            let mut program = ExecProgram::new();
            program.push(i, &[]);
            assert!(corpus.add_if_novel_scored(&program, &cov, u32::from(i) * 100));
        }
        assert_eq!(corpus.scores(), &[0, 100, 200]);
        // Drop the middle entry; its score must go with it.
        corpus.retain(|p| p.calls[0].nr != 1);
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.scores(), &[0, 200]);
        // Unscored admission and from_parts fill with UNSCORED.
        let rebuilt = Corpus::from_parts(corpus.entries().to_vec(), {
            let mut global = Box::new([0u8; MAP_SIZE]);
            global.copy_from_slice(corpus.global_map());
            global
        });
        assert_eq!(rebuilt.scores(), &[UNSCORED, UNSCORED]);
    }

    #[test]
    fn pick_wraps() {
        let mut corpus = Corpus::new();
        assert!(corpus.pick(3).is_none());
        let mut cov = CoverageMap::new();
        cov.record(0, 4);
        let mut program = ExecProgram::new();
        program.push(1, &[2]);
        corpus.add_if_novel(&program, &cov);
        assert_eq!(corpus.pick(0), corpus.pick(5));
    }
}
