//! Coverage-gated input corpus.

use embsan_guestos::executor::ExecProgram;

use crate::cover::{CoverageMap, MAP_SIZE};

/// A corpus of programs retained for producing new coverage.
pub struct Corpus {
    entries: Vec<ExecProgram>,
    global: Box<[u8; MAP_SIZE]>,
}

impl std::fmt::Debug for Corpus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Corpus")
            .field("entries", &self.entries.len())
            .field("coverage", &self.coverage_buckets())
            .finish()
    }
}

impl Default for Corpus {
    fn default() -> Corpus {
        Corpus::new()
    }
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Corpus {
        Corpus { entries: Vec::new(), global: Box::new([0; MAP_SIZE]) }
    }

    /// Number of retained programs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total coverage buckets reached so far.
    pub fn coverage_buckets(&self) -> usize {
        self.global.iter().filter(|&&b| b != 0).count()
    }

    /// Adds `program` if its execution's coverage reached anything new.
    /// Returns `true` when retained.
    pub fn add_if_novel(&mut self, program: &ExecProgram, coverage: &CoverageMap) -> bool {
        if coverage.merge_novel(&mut self.global) > 0 {
            self.entries.push(program.clone());
            true
        } else {
            false
        }
    }

    /// Picks an entry by an arbitrary index (callers supply randomness).
    pub fn pick(&self, index: usize) -> Option<&ExecProgram> {
        if self.entries.is_empty() {
            None
        } else {
            Some(&self.entries[index % self.entries.len()])
        }
    }

    /// The retained programs, in retention order (checkpoint export).
    pub fn entries(&self) -> &[ExecProgram] {
        &self.entries
    }

    /// The global classified-coverage map (checkpoint export).
    pub fn global_map(&self) -> &[u8; MAP_SIZE] {
        &self.global
    }

    /// Rebuilds a corpus from checkpointed parts (the inverse of
    /// [`Corpus::entries`] + [`Corpus::global_map`]).
    pub fn from_parts(entries: Vec<ExecProgram>, global: Box<[u8; MAP_SIZE]>) -> Corpus {
        Corpus { entries, global }
    }

    /// Drops every entry for which `keep` returns `false` (input
    /// quarantine). The global coverage map is deliberately kept: the
    /// dropped input's coverage was real, only the input is untrusted.
    pub fn retain(&mut self, keep: impl FnMut(&ExecProgram) -> bool) {
        self.entries.retain(keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_only_novel_inputs() {
        let mut corpus = Corpus::new();
        let mut cov = CoverageMap::new();
        cov.record(0, 0x1000);
        let mut program = ExecProgram::new();
        program.push(0, &[]);
        assert!(corpus.add_if_novel(&program, &cov));
        assert!(!corpus.add_if_novel(&program, &cov), "same coverage is not novel");
        assert_eq!(corpus.len(), 1);
        cov.record(0, 0x9000);
        assert!(corpus.add_if_novel(&program, &cov));
        assert_eq!(corpus.len(), 2);
        assert!(corpus.coverage_buckets() >= 2);
    }

    #[test]
    fn pick_wraps() {
        let mut corpus = Corpus::new();
        assert!(corpus.pick(3).is_none());
        let mut cov = CoverageMap::new();
        cov.record(0, 4);
        let mut program = ExecProgram::new();
        program.push(1, &[2]);
        corpus.add_if_novel(&program, &cov);
        assert_eq!(corpus.pick(0), corpus.pick(5));
    }
}
