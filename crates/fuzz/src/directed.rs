//! Directed-campaign steering from an `embsan-analysis-v1` artifact.
//!
//! [`Direction`] turns the static analysis into three runtime inputs:
//!
//! 1. **Edge-bucket distances**: the per-block static distances from
//!    [`embsan_analysis::distance`] are projected onto the same AFL bucket
//!    indices [`crate::cover::CoverageMap`] hashes dynamic edges into, so a
//!    retained input's sparse classified-coverage export scores in O(edges)
//!    with no second execution.
//! 2. **Annealed scheduling**: [`Direction::directed_pick`] biases corpus
//!    picks toward low-distance entries, hardening over campaign time.
//! 3. **Harvested operands**: the multi-byte comparison constants feed the
//!    mutator's dictionary stages (see [`crate::mutate::Mutator`]).
//!
//! Everything here is integer arithmetic over data already quantized by the
//! analysis crate, and all randomness flows through the caller's
//! [`SplitMix64`] — a directed campaign is a pure function of
//! `(seed, artifact, targets)`, and with no artifact loaded none of this
//! code runs, leaving undirected campaigns bit-identical.

use embsan_analysis::artifact::AnalysisArtifact;
use embsan_analysis::distance::block_distances;

use crate::corpus::UNSCORED;
use crate::cover::MAP_SIZE;
use crate::rng::SplitMix64;

/// Executions per annealing step: each step tightens the power-law bias by
/// one extra comparison draw (capped).
pub const ANNEAL_STEP: u64 = 2000;

/// Maximum extra draws the annealed pick makes (bias exponent cap).
const ANNEAL_CAP: u64 = 3;

/// Runtime steering state distilled from an analysis artifact.
#[derive(Clone)]
pub struct Direction {
    /// Minimum static distance (milli-edges) of any static edge hashing
    /// into each AFL bucket; [`UNSCORED`] where no scored edge lands.
    bucket_dist: Box<[u32; MAP_SIZE]>,
    /// Harvested comparison operands, sorted ascending.
    operands: Vec<u32>,
    /// The resolved target addresses driving the distance pass.
    targets: Vec<u32>,
}

impl std::fmt::Debug for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Direction")
            .field("scored_buckets", &self.bucket_dist.iter().filter(|&&d| d != UNSCORED).count())
            .field("operands", &self.operands.len())
            .field("targets", &self.targets.len())
            .finish()
    }
}

impl Direction {
    /// Builds steering state from an artifact. `targets` overrides the
    /// artifact's default target set when non-empty. Fails when no target
    /// resolves to a known block (a direction that steers nowhere is a
    /// configuration error, not a silent no-op).
    pub fn from_artifact(
        artifact: &AnalysisArtifact,
        targets: &[u32],
    ) -> Result<Direction, String> {
        let targets: Vec<u32> =
            if targets.is_empty() { artifact.default_targets.clone() } else { targets.to_vec() };
        if targets.is_empty() {
            return Err(
                "no targets: pass --target or analyze firmware with race candidates".to_string()
            );
        }
        let dist = block_distances(&artifact.graph, &targets);
        if dist.is_empty() {
            return Err(format!(
                "none of the {} target addresses fall inside a recovered block",
                targets.len()
            ));
        }
        // Project block distances onto AFL edge buckets: for every static
        // edge p→c where c has a finite distance, the bucket that edge
        // hashes into inherits the distance (min over colliding edges).
        // Dynamic fall-through edges that static block splitting does not
        // predict simply leave their buckets unscored — a coverage-scoring
        // heuristic, never a correctness input.
        let mut bucket_dist = Box::new([UNSCORED; MAP_SIZE]);
        let mut score_edge = |from: u32, to: u32| {
            if let Some(&d) = dist.get(&to) {
                let index = (((from >> 2) >> 1) ^ (to >> 2)) as usize & (MAP_SIZE - 1);
                bucket_dist[index] = bucket_dist[index].min(d);
            }
        };
        for node in artifact.graph.nodes.values() {
            for &succ in &node.succs {
                score_edge(node.start, succ);
            }
            if let Some(callee) = node.call_target {
                score_edge(node.start, callee);
            }
        }
        // Entry edges (prev = 0, how record() sees the first block after a
        // reset) so a scored block reached first still scores.
        for (&addr, &d) in &dist {
            let index = (addr >> 2) as usize & (MAP_SIZE - 1);
            bucket_dist[index] = bucket_dist[index].min(d);
        }
        let mut operands: Vec<u32> = artifact.cmp_operands.iter().map(|op| op.value).collect();
        operands.sort_unstable();
        operands.dedup();
        Ok(Direction { bucket_dist, operands, targets })
    }

    /// The harvested comparison operands, sorted ascending.
    pub fn operands(&self) -> &[u32] {
        &self.operands
    }

    /// The resolved target addresses.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Scores a sparse classified-coverage export: the minimum static
    /// distance over all covered buckets, or [`UNSCORED`] when no covered
    /// bucket carries a distance.
    pub fn score_sparse(&self, sparse: &[(u32, u8)]) -> u32 {
        sparse
            .iter()
            .map(|&(index, _)| self.bucket_dist[index as usize & (MAP_SIZE - 1)])
            .min()
            .unwrap_or(UNSCORED)
    }

    /// Annealed distance-biased corpus pick over `scores` (parallel to the
    /// corpus entries). Draws `1 + min(execs / ANNEAL_STEP, ANNEAL_CAP)`
    /// uniform candidates and keeps the lowest-scoring one (ties broken by
    /// index, so the result is deterministic) — an integer-only power-law:
    /// early in the campaign the bias is mild (2 draws), later it hardens
    /// (up to 4). Returns `None` on an empty corpus.
    pub fn directed_pick(&self, scores: &[u32], execs: u64, rng: &mut SplitMix64) -> Option<usize> {
        if scores.is_empty() {
            return None;
        }
        let draws = 1 + (execs / ANNEAL_STEP).min(ANNEAL_CAP);
        let mut best: Option<usize> = None;
        for _ in 0..draws {
            let candidate = rng.gen_usize() % scores.len();
            best = Some(match best {
                None => candidate,
                Some(current) => {
                    if (scores[candidate], candidate) < (scores[current], current) {
                        candidate
                    } else {
                        current
                    }
                }
            });
        }
        best
    }
}

/// Frontier summary of the corpus scores: `(min, mean)` static distance in
/// milli-edges over scored entries, or `None` when nothing scored yet.
pub fn frontier(scores: &[u32]) -> Option<(u32, u32)> {
    let scored: Vec<u32> = scores.iter().copied().filter(|&s| s != UNSCORED).collect();
    if scored.is_empty() {
        return None;
    }
    let min = *scored.iter().min().unwrap();
    let mean = (scored.iter().map(|&s| u64::from(s)).sum::<u64>() / scored.len() as u64) as u32;
    Some((min, mean))
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use embsan_analysis::distance::{FlowGraph, FlowNode};
    use embsan_emu::profile::Arch;

    use super::*;

    fn artifact() -> AnalysisArtifact {
        let mut nodes = BTreeMap::new();
        for (start, succs, call) in [
            (0x1000u32, vec![0x1010, 0x1020], None),
            (0x1010, vec![0x1020], None),
            (0x1020, vec![], Some(0x2000)),
            (0x2000, vec![], None),
        ] {
            nodes.insert(
                start,
                FlowNode {
                    start,
                    end: start + 0x10,
                    succs,
                    call_target: call,
                    indirect_call: false,
                },
            );
        }
        AnalysisArtifact {
            arch: Arch::Armv,
            entry: 0x1000,
            text_base: 0x1000,
            text_len: 0x2000,
            graph: FlowGraph { fn_entries: vec![0x1000, 0x2000], address_taken: vec![], nodes },
            cmp_operands: vec![
                embsan_analysis::CmpOperand { value: 0x1234_5678, block: 0x1020 },
                embsan_analysis::CmpOperand { value: 0x1234_5678, block: 0x1000 },
            ],
            default_targets: vec![0x2000],
        }
    }

    #[test]
    fn from_artifact_resolves_defaults_and_dedups_operands() {
        let direction = Direction::from_artifact(&artifact(), &[]).unwrap();
        assert_eq!(direction.targets(), &[0x2000]);
        assert_eq!(direction.operands(), &[0x1234_5678]);
    }

    #[test]
    fn unresolvable_targets_are_an_error() {
        assert!(Direction::from_artifact(&artifact(), &[0xDEAD_0000]).is_err());
        let mut empty = artifact();
        empty.default_targets.clear();
        assert!(Direction::from_artifact(&empty, &[]).is_err());
    }

    #[test]
    fn sparse_scoring_prefers_edges_near_the_target() {
        let direction = Direction::from_artifact(&artifact(), &[0x2000]).unwrap();
        // The dynamic edge 0x1020 → 0x2000 (the call) hashes like record():
        let near = (((0x1020u32 >> 2) >> 1) ^ (0x2000 >> 2)) & (MAP_SIZE as u32 - 1);
        let far = (((0x1000u32 >> 2) >> 1) ^ (0x1010 >> 2)) & (MAP_SIZE as u32 - 1);
        let near_score = direction.score_sparse(&[(near, 1)]);
        let far_score = direction.score_sparse(&[(far, 1)]);
        assert!(near_score < far_score, "{near_score} vs {far_score}");
        // Min over a combined run equals the best single edge.
        assert_eq!(direction.score_sparse(&[(near, 1), (far, 1)]), near_score);
        // Unknown buckets score UNSCORED; empty exports too.
        assert_eq!(direction.score_sparse(&[]), UNSCORED);
    }

    #[test]
    fn directed_pick_is_deterministic_and_biased() {
        let direction = Direction::from_artifact(&artifact(), &[]).unwrap();
        let scores = vec![5000, 100, UNSCORED, 3000];
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for execs in [0u64, 1000, 5000, 100_000] {
            assert_eq!(
                direction.directed_pick(&scores, execs, &mut a),
                direction.directed_pick(&scores, execs, &mut b)
            );
        }
        // Late-campaign picks concentrate on the best entry.
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut hits = [0usize; 4];
        for _ in 0..400 {
            hits[direction.directed_pick(&scores, 1_000_000, &mut rng).unwrap()] += 1;
        }
        assert!(hits[1] > hits[0] && hits[1] > hits[2] && hits[1] > hits[3], "{hits:?}");
    }

    #[test]
    fn frontier_summarizes_scored_entries() {
        assert_eq!(frontier(&[]), None);
        assert_eq!(frontier(&[UNSCORED, UNSCORED]), None);
        assert_eq!(frontier(&[3000, UNSCORED, 1000]), Some((1000, 2000)));
    }
}
