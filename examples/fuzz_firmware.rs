//! Fuzzing a firmware with EMBSAN attached — the §4.2 workflow in
//! miniature.
//!
//! Builds the Table-1 `OpenWRT-armvirt` configuration (EMBSAN-C,
//! Syzkaller-style fuzzing), runs a short seeded campaign, and prints the
//! findings with their minimized reproducers.
//!
//! Run with `cargo run --release --example fuzz_firmware`
//! (release strongly recommended; override iterations with
//! `EMBSAN_EXAMPLE_ITERS`).

use embsan::fuzz::campaign::{run_campaign, CampaignConfig};
use embsan::guestos::firmware_by_name;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iterations =
        std::env::var("EMBSAN_EXAMPLE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(4_000);
    let spec = firmware_by_name("OpenWRT-armvirt").expect("registered firmware");
    println!(
        "campaign: {} ({} on {}, {} fuzzer), {} iterations",
        spec.name, spec.base_os, spec.arch, spec.fuzzer, iterations
    );

    let config = CampaignConfig { iterations, seed: 0xD15EA5E, ..CampaignConfig::default() };
    let result = run_campaign(spec, &config)?;

    println!(
        "\nexecs: {}  corpus: {}  coverage buckets: {}",
        result.stats.execs, result.stats.corpus, result.stats.coverage
    );
    println!("found {} bug(s):", result.found.len());
    for bug in &result.found {
        println!(
            "  [{}] {} — {} call reproducer: {:?}",
            bug.class,
            bug.location,
            bug.reproducer.calls.len(),
            bug.reproducer.calls.iter().map(|c| c.nr).collect::<Vec<_>>()
        );
    }
    if result.found.is_empty() {
        println!("  (none under this budget — raise EMBSAN_EXAMPLE_ITERS)");
    }
    Ok(())
}
