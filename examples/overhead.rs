//! Quick overhead comparison on one firmware — a single-target preview of
//! Figure 2.
//!
//! Run with `cargo run --release --example overhead`.

use embsan::core::probe::{probe, ProbeMode};
use embsan::core::session::Session;
use embsan::emu::hook::NullHook;
use embsan::emu::machine::RunExit;
use embsan::guestos::firmware_by_name;
use embsan::guestos::workload::merged_corpus;
use embsan::guestos::SanMode;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = firmware_by_name("OpenWRT-armvirt").expect("registered firmware");
    let corpus = merged_corpus(7, 12, 40);
    println!("workload: {} programs on {}", corpus.len(), spec.name);

    // Baseline: no sanitizer.
    let image = spec.build(SanMode::None)?;
    let mut machine = image.boot_machine(1)?;
    machine.run(&mut NullHook, 400_000_000)?;
    let start = Instant::now();
    for program in &corpus {
        machine.bus_mut().devices.mailbox.host_load(&program.encode());
        loop {
            let exit = machine.run(&mut NullHook, 500_000)?;
            if machine.bus().devices.mailbox.result_count() >= program.calls.len()
                || exit != RunExit::BudgetExhausted
            {
                break;
            }
        }
    }
    let baseline = start.elapsed();
    println!("baseline:              {baseline:>10.2?}");

    // EMBSAN-C and EMBSAN-D with the merged KASAN+KCSAN spec.
    let specs = embsan::core::reference_specs()?;
    for (label, san, mode) in [
        ("EMBSAN-C (hypercalls)", SanMode::SanCall, ProbeMode::CompileTime),
        ("EMBSAN-D (dynamic)   ", SanMode::None, ProbeMode::DynamicSource),
    ] {
        let image = spec.build(san)?;
        let artifacts = probe(&image, mode, None)?;
        let mut session = Session::new(&image, &specs, &artifacts)?;
        session.run_to_ready(400_000_000)?;
        let start = Instant::now();
        for program in &corpus {
            session.run_program(program, 50_000_000)?;
        }
        let elapsed = start.elapsed();
        println!(
            "{label}: {elapsed:>10.2?}  ({:.2}x, {} checks)",
            elapsed.as_secs_f64() / baseline.as_secs_f64(),
            session.runtime().checks_performed()
        );
        assert!(session.reports().is_empty(), "clean workload");
    }
    Ok(())
}
