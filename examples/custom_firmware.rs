//! Bring-your-own firmware: write a small kernel in EV32 *text assembly*,
//! assemble and link it in-process, and sanitize it with EMBSAN-D.
//!
//! This exercises the full toolchain surface a downstream user would touch
//! to port EMBSAN to their own firmware: the text assembler, the linker,
//! allocator-signature probing over code EMBSAN has never seen, and
//! dynamic-mode sanitizing — no instrumentation, no guest cooperation.
//!
//! Run with `cargo run --example custom_firmware`.

use embsan::asm::{assemble, link, LinkOptions};
use embsan::core::probe::{probe, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::report::BugClass;
use embsan::core::session::Session;
use embsan::dsl::FuncRole;
use embsan::emu::profile::Arch;
use embsan::guestos::executor::ExecProgram;

/// A minimal hand-written kernel: bump allocator with a freelist-less
/// `my_alloc`/`my_free` pair, a mailbox executor with three syscalls, and
/// a use-after-free lurking in syscall 2.
const KERNEL_SOURCE: &str = r#"
    .entry main
    .ready ready_point
    .heap 65536
    .global bump_ptr, 4
    .global saved_ptr, 4

main:
    la sp, __stack_top
    ; init allocator
    la r1, __heap_start
    la r2, bump_ptr
    sw r1, [r2]
    ; two boot allocations so the prober can observe the signature
    li a0, 64
    call my_alloc
    li a0, 32
    call my_alloc
    mv a0, a0
    call my_free
ready_point:
    call executor
    halt 0

; my_alloc(a0 = size) -> a0: bump allocation, 8-byte header with the size.
my_alloc:
    la a2, bump_ptr
    lw a1, [a2]
    sw a0, [a1]            ; header: size
    addi a3, a0, 15
    li a4, 0xFF8
    la a5, mask
    lw a5, [a5]
    and a3, a3, a5
    add a3, a1, a3
    sw a3, [a2]
    addi a0, a1, 8
    ret

; my_free(a0 = ptr): this toy allocator never recycles; it only tags the
; header so the prober sees alloc-result pointers flowing back in.
my_free:
    li a1, 0
    sw a1, [a0-8]
    ret

; executor: mailbox protocol (count, then [nr, argc, args...] per call).
executor:
    addi sp, sp, -8
    sw lr, [sp+4]
.wait:
    la r7, mb_status
    lw r7, [r7]
    lw a0, [r7]
    bne a0, r0, .go
    wfi
    j .wait
.go:
    call rdbyte
    mv r8, a0
.calls:
    beq r8, r0, .wait
    call rdbyte            ; nr
    mv r9, a0
    call rdbyte            ; argc
    mv a4, a0
    li a5, 0
    li a3, 0
.args:
    bgeu a5, a4, .dispatch
    call rdword
    mv a3, a0              ; keep only the last argument (enough here)
    addi a5, a5, 1
    j .args
.dispatch:
    mv a0, a3
    li a1, 1
    beq r9, a1, .do_alloc
    li a1, 2
    beq r9, a1, .do_uaf
    li a0, 0
    j .result
.do_alloc:
    call my_alloc
    la a1, saved_ptr
    sw a0, [a1]
    j .result
.do_uaf:
    ; free the saved object, then read through the stale pointer
    la a1, saved_ptr
    lw a0, [a1]
    beq a0, r0, .result
    call my_free
    la a1, saved_ptr
    lw a2, [a1]
    lw a0, [a2+4]          ; use after free
.result:
    la a1, mb_result
    lw a1, [a1]
    sw a0, [a1]
    addi r8, r8, -1
    j .calls

; rdbyte() -> a0
rdbyte:
    la a1, mb_next
    lw a1, [a1]
    lw a0, [a1]
    ret

; rdword() -> a0 (little-endian)
rdword:
    addi sp, sp, -8
    sw lr, [sp+4]
    li a2, 0
    li a3, 0
.lp:
    call rdbyte
    sll a0, a0, a3
    or a2, a2, a0
    addi a3, a3, 8
    slti a1, a3, 32
    bne a1, r0, .lp
    mv a0, a2
    lw lr, [sp+4]
    addi sp, sp, 8
    ret

    ; constants (MMIO addresses for the Armv profile)
    .data mask, [248, 255, 255, 255]
    .data mb_status, [0, 4, 0, 240]
    .data mb_next,   [8, 4, 0, 240]
    .data mb_result, [12, 4, 0, 240]
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Assemble + link the hand-written kernel.
    let program = assemble(KERNEL_SOURCE)?;
    let image = link(&program, &LinkOptions::new(Arch::Armv))?;
    println!(
        "assembled custom kernel: {} instructions, entry {:#x}",
        image.text.len() / 4,
        image.entry
    );

    // Probe it like any source-available, uninstrumented firmware.
    let artifacts = probe(&image, ProbeMode::DynamicSource, None)?;
    let alloc = artifacts.platform.func_by_role(FuncRole::Alloc).expect("alloc found");
    let free = artifacts.platform.func_by_role(FuncRole::Free).expect("free found");
    println!("prober identified: alloc=`{}`, free=`{}`", alloc.symbol, free.symbol);
    assert_eq!(alloc.symbol, "my_alloc");
    assert_eq!(free.symbol, "my_free");

    // Sanitize with EMBSAN-D and trigger the lurking use-after-free.
    let specs = reference_specs()?;
    let mut session = Session::new(&image, &specs, &artifacts)?;
    session.run_to_ready(10_000_000)?;
    let mut program = ExecProgram::new();
    program.push(1, &[64]); // my_alloc(64)
    program.push(2, &[0]); // free + stale read
    let outcome = session.run_program(&program, 10_000_000)?;
    for report in &outcome.reports {
        print!("{}", session.render_report(report));
    }
    assert!(
        outcome.reports.iter().any(|r| r.class == BugClass::Uaf),
        "EMBSAN-D catches the UAF in the hand-written kernel: {:?}",
        outcome.reports
    );
    println!("use-after-free in the custom kernel detected.");
    Ok(())
}
