//! Static analysis composing with the dynamic pipeline.
//!
//! Three handoffs from `embsan::analysis` into the rest of the stack:
//!
//! 1. CFG recovery + probe-coverage audit: prove the block translator
//!    splices a sanitizer probe on every statically reachable memory op.
//! 2. Allocator-signature priors: rank candidate alloc/free entry points
//!    of a *stripped* image so the D-binary prober verifies them against
//!    one recorded boot trace instead of running a discovery pass.
//! 3. Lockset race candidates: prioritize KCSAN watchpoints on addresses
//!    reached without a provably held spinlock.
//!
//! Run with `cargo run --example static_analysis`.

use embsan::analysis::audit::audit;
use embsan::analysis::cfg::Cfg;
use embsan::analysis::races::watchpoint_priorities;
use embsan::analysis::static_priors;
use embsan::core::probe::{probe, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::session::Session;
use embsan::emu::hook::HookConfig;
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{BugKind, BugSpec, LATENT_BUGS};
use embsan::guestos::{os, BuildOptions, SanMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Audit probe coverage of a stripped closed-source image.
    let opts = BuildOptions::new(Arch::Armv);
    let stripped = os::vxworks::build(&opts, &[])?;
    let cfg = Cfg::build(&stripped);
    println!(
        "cfg: {} blocks, {} functions, {:.1}% of text reachable",
        cfg.blocks.len(),
        cfg.functions.len(),
        cfg.reachable_fraction() * 100.0
    );
    let report = audit(&stripped, HookConfig::all())?;
    println!("audit: {} sites checked, clean = {}", report.checked_sites, report.is_clean());

    // 2. Static priors cut the D-binary prober's dry-run passes.
    let baseline = probe(&stripped, ProbeMode::DynamicBinary, None)?;
    let prior = static_priors(&stripped);
    let assisted = probe(&stripped, ProbeMode::DynamicBinary, Some(&prior))?;
    println!(
        "prober dry-run passes: {} unassisted, {} with static priors",
        baseline.stats.dry_run_passes, assisted.stats.dry_run_passes
    );
    assert!(assisted.stats.dry_run_passes < baseline.stats.dry_run_passes);
    assert_eq!(assisted.to_dsl(), baseline.to_dsl());

    // 3. Race candidates feed KCSAN watchpoint prioritization.
    let race_bug = LATENT_BUGS
        .iter()
        .find(|b| b.kind == BugKind::Race)
        .map(|b| BugSpec::new(b.location, b.kind))
        .expect("the bug corpus seeds a race");
    let mut opts = BuildOptions::new(Arch::Armv);
    opts.cpus = 2;
    opts.san = SanMode::SanCall;
    let image = os::emblinux::build(&opts, &[race_bug])?;
    let priorities = watchpoint_priorities(&Cfg::build(&image), &image);
    println!("race candidates prioritized for KCSAN: {} addresses", priorities.len());

    let specs = reference_specs()?;
    let artifacts = probe(&image, ProbeMode::CompileTime, None)?;
    let mut session = Session::new(&image, &specs, &artifacts)?;
    session.set_race_priorities(&priorities);
    println!("session armed with {} priority watchwords", session.runtime().race_priority_count());
    Ok(())
}
