//! Probing and sanitizing closed-source binary-only firmware — the
//! paper's category 3 (the TP-Link VxWorks case).
//!
//! The firmware arrives *stripped*: no symbols, no global table, no ready
//! annotation. The prober's binary mode identifies the allocator pair
//! purely from call/return dataflow observed during a dry run, then
//! EMBSAN-D sanitizes the firmware through dynamic interception — no
//! recompilation, no source.
//!
//! Run with `cargo run --example closed_firmware`.

use embsan::core::probe::{probe, ProbeMode};
use embsan::core::reference_specs;
use embsan::core::session::Session;
use embsan::dsl::FuncRole;
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BuildOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "vendor" builds firmware with two service bugs and ships only
    // the stripped image (we never look at the unstripped ground truth).
    let bugs = [BugSpec::new("pppoed", BugKind::OobWrite), BugSpec::new("dhcpsd", BugKind::Uaf)];
    let opts = BuildOptions::new(Arch::Armv);
    let image = os::vxworks::build(&opts, &bugs)?;
    assert!(!image.has_symbols(), "closed firmware has no symbol table");
    println!("received closed firmware: {} bytes of text, 0 symbols\n", image.text.len());

    // Binary-mode probing: multi-pass dry run + dataflow heuristics.
    let artifacts = probe(&image, ProbeMode::DynamicBinary, None)?;
    let alloc = artifacts
        .platform
        .func_by_role(FuncRole::Alloc)
        .expect("allocator identified by signature");
    let free =
        artifacts.platform.func_by_role(FuncRole::Free).expect("free identified by dataflow");
    println!(
        "prober identified allocator pair without symbols:\n  alloc: {} @ {:#x}\n  free:  {} @ {:#x}\n",
        alloc.symbol, alloc.addr, free.symbol, free.addr
    );
    println!("generated platform spec:\n{}\n", artifacts.platform);

    // EMBSAN-D testing phase over the stripped binary.
    let specs = reference_specs()?;
    let mut session = Session::new(&image, &specs, &artifacts)?;
    session.run_to_ready(100_000_000)?;

    for (i, bug) in bugs.iter().enumerate() {
        let mut program = ExecProgram::new();
        program.push(sys::BUG_BASE + i as u8, &[trigger_key(&bug.location)]);
        let outcome = session.run_program(&program, 10_000_000)?;
        println!("service `{}`: {} report(s)", bug.location, outcome.reports.len());
        for report in &outcome.reports {
            print!("{}", session.render_report(report));
        }
        assert!(!outcome.reports.is_empty(), "EMBSAN-D detects heap bugs in binary-only firmware");
    }
    Ok(())
}
