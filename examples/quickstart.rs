//! Quickstart: sanitize a firmware image with EMBSAN and catch a
//! use-after-free.
//!
//! This walks the paper's full workflow on a minimal target:
//!
//! 1. build an Embedded Linux firmware with one seeded bug, compiled with
//!    EMBSAN-C instrumentation (the dummy hypercall sanitizer library);
//! 2. *distill* the reference KASAN+KCSAN extractions into the merged DSL
//!    spec (§3.1);
//! 3. *probe* the firmware's platform configuration and init routine
//!    (§3.2), printing the generated DSL;
//! 4. run the *testing phase* (§3.5): boot to ready, replay a reproducer,
//!    and print the KASAN-style report.
//!
//! Run with `cargo run --example quickstart`.

use embsan::core::probe::{probe, ProbeMode};
use embsan::core::session::Session;
use embsan::core::{distill, reference_specs};
use embsan::emu::profile::Arch;
use embsan::guestos::bugs::{trigger_key, BugKind, BugSpec};
use embsan::guestos::executor::{sys, ExecProgram};
use embsan::guestos::{os, BuildOptions, SanMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the target firmware (a "vulnerable driver" in its tree).
    let bug = BugSpec::new("drivers/demo", BugKind::Uaf);
    let opts = BuildOptions::new(Arch::Armv).san(SanMode::SanCall);
    let image = os::emblinux::build(&opts, std::slice::from_ref(&bug))?;
    println!(
        "built firmware: {} bytes of text, {} symbols, instrumented={:?}\n",
        image.text.len(),
        image.symbols.len(),
        image.instr
    );

    // 2. Distill the sanitizer reference extractions into the DSL.
    let specs = reference_specs()?;
    let merged = embsan::dsl::merge(&specs);
    println!("merged sanitizer specification (distiller output):\n{merged}\n");
    assert_eq!(merged.to_string(), distill::reference_merged()?.to_string());

    // 3. Pre-testing probing phase.
    let artifacts = probe(&image, ProbeMode::CompileTime, None)?;
    println!("prober output (platform spec + init routine):\n{}", artifacts.to_dsl());

    // 4. Testing phase.
    let mut session = Session::new(&image, &specs, &artifacts)?;
    session.run_to_ready(100_000_000)?;
    println!("firmware ready; sanitizer active\n");

    let mut reproducer = ExecProgram::new();
    reproducer.push(sys::BUG_BASE, &[trigger_key("drivers/demo")]);
    let outcome = session.run_program(&reproducer, 10_000_000)?;
    for report in &outcome.reports {
        println!("{}", session.render_report(report));
    }
    assert_eq!(outcome.reports.len(), 1, "the seeded UAF is detected");
    Ok(())
}
