//! EMBSAN — a reproduction of "Effectively Sanitizing Embedded Operating
//! Systems" (DAC 2024) as a Rust workspace.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! - [`emu`]: the EV32 full-system emulator (QEMU/TCG substitute) whose
//!   translation templates accept sanitizer probes;
//! - [`asm`]: the firmware toolchain — assembler, linker, image format and
//!   the EMBSAN-C compile-time instrumentation pass;
//! - [`dsl`]: the in-house DSL for sanitizer specs, platform specs and
//!   init routines, with the §3.1 merge rules;
//! - [`guestos`]: four synthetic embedded OS families with the seeded bug
//!   corpus of the paper's evaluation;
//! - [`core`]: EMBSAN itself — Distiller, Prober and the Common Sanitizer
//!   Runtime (KASAN + KCSAN engines over a unified shadow memory);
//! - [`fuzz`]: Syzkaller- and Tardis-style fuzzers with the campaign
//!   driver behind Tables 3 and 4;
//! - [`analysis`]: static analysis over firmware images — CFG recovery,
//!   probe-coverage auditing, allocator-signature priors for the D-binary
//!   Prober, and lockset race candidates for KCSAN watchpoint priority;
//! - [`obs`]: the observability layer — structured event tracing
//!   (`embsan-trace-v1`), the typed metrics registry, and the feature-gated
//!   hot-path profilers, all zero-cost when disabled;
//! - [`serve`]: the crash-tolerant campaign daemon behind `embsan serve` —
//!   fair-share scheduling over a supervised worker pool, quarantine and
//!   graceful degradation, and a cross-campaign deduplicating findings
//!   store, all restartable from durable journals.
//!
//! Start with the `quickstart` example or [`core::session::Session`].

pub use embsan_analysis as analysis;
pub use embsan_asm as asm;
pub use embsan_core as core;
pub use embsan_dsl as dsl;
pub use embsan_emu as emu;
pub use embsan_fuzz as fuzz;
pub use embsan_guestos as guestos;
pub use embsan_obs as obs;
pub use embsan_serve as serve;
